package routing

import (
	"math/bits"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/topology"
)

// This file is the topology compilation layer: it lowers a (topology,
// algorithm) pair into flat arrays so the per-packet hot path never
// walks the graph. For every destination the compiler stores
//
//   - a dense int16 distance row (replacing the lazy map[NodeID][]int
//     caches the BFS implementations used to grow at route time), and
//   - one packed next-hop candidate byte per (node, dst): bit i set
//     means geom.LinkDirs[i] is a legal minimal next hop. AppendRoute
//     then reduces to two array loads plus a popcount-indexed pick per
//     hop, with rng draw semantics identical to the graph walk it
//     replaced (one Intn(candidates) draw iff candidates > 1).
//
// Compiled tables are immutable after construction, which is what makes
// one instance shareable across the sweep engine's workers and the
// sharded core's parallel injection phase (see race_test.go); the lazy
// maps they replace mutated under Route and were unsafe to share.

// minTables is the compiled form of minimal routing: all-pairs
// distances and per-(node,dst) candidate masks over a FlatGraph.
type minTables struct {
	n    int
	dist []int16 // [dst*n + node]: directed-hop distance node→dst, -1 unreachable
	mask []uint8 // [dst*n + node]: bit d set iff d is a minimal next hop
}

// bytes returns the heap footprint of the table arrays.
func (t *minTables) bytes() int64 { return 2*int64(len(t.dist)) + int64(len(t.mask)) }

// compileMinimal builds the minimal-routing tables for every
// destination of g: one reverse BFS per destination (O(N) each over the
// flat arrays), then a candidate-mask fill.
func compileMinimal(g *topology.FlatGraph) *minTables {
	n := g.N
	t := &minTables{
		n:    n,
		dist: make([]int16, n*n),
		mask: make([]uint8, n*n),
	}
	queue := make([]int32, 0, n)
	for dst := 0; dst < n; dst++ {
		base := dst * n
		row := t.dist[base : base+n]
		for i := range row {
			row[i] = -1
		}
		if !g.Alive[dst] {
			continue
		}
		row[dst] = 0
		queue = append(queue[:0], int32(dst))
		for head := 0; head < len(queue); head++ {
			cur := int(queue[head])
			// Predecessors of cur: nodes p with a usable channel p→cur.
			for d := 0; d < geom.NumLinkDirs; d++ {
				p := g.Adj[geom.NumLinkDirs*cur+d]
				if p < 0 || g.Next[geom.NumLinkDirs*int(p)+int(geom.Direction(d).Opposite())] != int32(cur) {
					continue
				}
				if row[p] < 0 {
					row[p] = row[cur] + 1
					queue = append(queue, p)
				}
			}
		}
		// Candidate masks: every usable outgoing channel that decreases
		// the distance by exactly one.
		for v := 0; v < n; v++ {
			if row[v] <= 0 {
				continue
			}
			var m uint8
			for d := 0; d < geom.NumLinkDirs; d++ {
				nb := g.Next[geom.NumLinkDirs*v+d]
				if nb >= 0 && row[nb] == row[v]-1 {
					m |= 1 << uint(d)
				}
			}
			t.mask[base+v] = m
		}
	}
	return t
}

const (
	phaseUp   = 0 // may still take up channels
	phaseDown = 1 // committed to down channels only
)

// udTables is the compiled form of up*/down* routing: distances on the
// (node, phase) state graph and per-(node,dst) candidate masks with the
// two phases packed into one byte (low nibble = phaseUp candidates,
// high nibble = phaseDown candidates).
type udTables struct {
	n    int
	dist []int16 // [(dst*n + node)*2 + phase]
	mask []uint8 // [dst*n + node]
}

func (t *udTables) bytes() int64 { return 2*int64(len(t.dist)) + int64(len(t.mask)) }

// compileUpDown builds the up*/down* tables. level is the BFS-tree
// level array (-1 dead/unrouted) and upMask[v] has bit d set iff the
// channel v→d is an "up" channel; both come from the spanning-tree
// construction in updown.go.
func compileUpDown(g *topology.FlatGraph, level []int, upMask []uint8) *udTables {
	n := g.N
	t := &udTables{
		n:    n,
		dist: make([]int16, 2*n*n),
		mask: make([]uint8, n*n),
	}
	queue := make([]int32, 0, 2*n)
	for dst := 0; dst < n; dst++ {
		base := dst * n
		row := t.dist[2*base : 2*(base+n)]
		for i := range row {
			row[i] = -1
		}
		if level[dst] < 0 {
			continue
		}
		// BFS over (node, phase) states, walking legal transitions
		// backward: an up channel keeps phaseUp and requires phaseUp
		// before it; a down channel lands in phaseDown from either phase.
		row[2*dst+phaseUp] = 0
		row[2*dst+phaseDown] = 0
		queue = append(queue[:0], int32(2*dst+phaseUp), int32(2*dst+phaseDown))
		for head := 0; head < len(queue); head++ {
			st := int(queue[head])
			node, phase := st>>1, st&1
			sd := row[st]
			for d := 0; d < geom.NumLinkDirs; d++ {
				v := g.Adj[geom.NumLinkDirs*node+d]
				if v < 0 || g.Next[geom.NumLinkDirs*int(v)+int(geom.Direction(d).Opposite())] != int32(node) {
					continue
				}
				if level[v] < 0 {
					continue
				}
				chanUp := upMask[v]&(1<<uint(geom.Direction(d).Opposite())) != 0 // channel v→node
				var lo, hi int
				switch {
				case chanUp && phase == phaseUp:
					lo, hi = phaseUp, phaseUp
				case !chanUp && phase == phaseDown:
					lo, hi = phaseUp, phaseDown
				default:
					continue
				}
				for pv := lo; pv <= hi; pv++ {
					idx := 2*int(v) + pv
					if row[idx] < 0 {
						row[idx] = sd + 1
						queue = append(queue, int32(idx))
					}
				}
			}
		}
		// Candidate masks per phase.
		for v := 0; v < n; v++ {
			if level[v] < 0 {
				continue
			}
			var m uint8
			curUp, curDown := row[2*v+phaseUp], row[2*v+phaseDown]
			for d := 0; d < geom.NumLinkDirs; d++ {
				nb := g.Next[geom.NumLinkDirs*v+d]
				if nb < 0 {
					continue
				}
				chanUp := upMask[v]&(1<<uint(d)) != 0
				next := phaseDown
				if chanUp {
					next = phaseUp
				}
				nd := row[2*int(nb)+next]
				if curUp > 0 && nd == curUp-1 {
					m |= 1 << uint(d)
				}
				// phaseDown may only continue on down channels.
				if !chanUp && curDown > 0 && nd == curDown-1 {
					m |= 1 << (4 + uint(d))
				}
			}
			t.mask[base+v] = m
		}
	}
	return t
}

// pickDir returns the k-th set direction of candidate mask m (bit i is
// geom.LinkDirs[i], so candidates enumerate in N,E,S,W order exactly as
// the graph walk did), drawing k from rng iff more than one candidate
// exists — the rng contract every seeded trajectory depends on.
func pickDir(m uint8, rng *rand.Rand) geom.Direction {
	cnt := bits.OnesCount8(uint8(m))
	k := 0
	if rng != nil && cnt > 1 {
		k = rng.Intn(cnt)
	}
	for i := 0; i < geom.NumLinkDirs; i++ {
		if m&(1<<uint(i)) != 0 {
			if k == 0 {
				return geom.Direction(i)
			}
			k--
		}
	}
	return geom.Invalid
}
