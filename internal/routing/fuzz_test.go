package routing

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/topology"
)

// FuzzMinimalRouteValidity: any route the minimal router produces over
// any faulted topology must be walkable, shortest, and U-turn free.
func FuzzMinimalRouteValidity(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(3), uint8(0), uint8(63))
	f.Add(int64(42), uint8(50), uint8(10), uint8(12), uint8(51))
	f.Fuzz(func(t *testing.T, seed int64, lf, rf, src, dst uint8) {
		topo := topology.NewMesh(8, 8)
		rng := rand.New(rand.NewSource(seed))
		topology.RandomLinkFaults(topo, rng, int(lf)%113)
		topology.RandomRouterFaults(topo, rng, int(rf)%33)
		m := NewMinimal(topo)
		s, d := geom.NodeID(src%64), geom.NodeID(dst%64)
		r, ok := m.Route(s, d, rng)
		if !ok {
			if m.Reachable(s, d) {
				t.Fatalf("route missing for reachable pair %v→%v", s, d)
			}
			return
		}
		if err := r.Validate(topo, s, d); err != nil {
			t.Fatal(err)
		}
		if r.Len() != m.Distance(s, d) {
			t.Fatalf("route not shortest: %d vs %d", r.Len(), m.Distance(s, d))
		}
	})
}

// FuzzUpDownLegality: up/down routes must be walkable and never take an
// up channel after a down channel; the tree variant must reach the
// destination over tree edges.
func FuzzUpDownLegality(f *testing.F) {
	f.Add(int64(7), uint8(20), uint8(5), uint8(60))
	f.Add(int64(13), uint8(0), uint8(33), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, lf, src, dst uint8) {
		topo := topology.NewMesh(8, 8)
		rng := rand.New(rand.NewSource(seed))
		topology.RandomLinkFaults(topo, rng, int(lf)%113)
		u := NewUpDown(topo)
		s, d := geom.NodeID(src%64), geom.NodeID(dst%64)
		if r, ok := u.Route(s, d, rng); ok {
			if err := r.Validate(topo, s, d); err != nil {
				t.Fatal(err)
			}
			down := false
			cur := s
			for _, dir := range r {
				up := u.IsUp(cur, dir)
				if up && down {
					t.Fatalf("illegal down→up turn in %v from %v", r, s)
				}
				if !up {
					down = true
				}
				cur = topo.Neighbor(cur, dir)
			}
		}
		if tr, ok := u.TreeRoute(s, d); ok {
			if err := tr.Validate(topo, s, d); err != nil {
				t.Fatal(err)
			}
		}
	})
}
