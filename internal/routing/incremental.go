package routing

import (
	"repro/internal/geom"
	"repro/internal/topology"
)

// Incremental recompilation: rebuild compiled routing tables after a
// topology epoch in time proportional to the damage, not the chip.
//
// The key fact (DESIGN.md §14): a destination column of the minimal
// tables can change only if the epoch's channel delta touches a *tight*
// edge of that column's shortest-path DAG. Concretely, with row0 the
// previous distance column for destination dst:
//
//   - removing channel u→v perturbs the column iff row0[v] >= 0 and
//     row0[u] == row0[v]+1 (the channel was a minimal next hop of u);
//   - adding channel u→v perturbs the column iff row0[v] >= 0 and
//     (row0[u] < 0 or row0[u] >= row0[v]+1) (the channel creates an
//     equal-or-better path for u).
//
// If neither condition holds for any delta channel, the old column is a
// Bellman fixed point of the new graph with an unchanged tight-edge set,
// so both the distance row and the candidate masks are bit-identical —
// the column is shared pointer-identically with the previous table.
//
// Perturbed columns are *repaired*, not recomputed: a Ramalingam/Reps
// style two-phase pass finds the exact set of nodes whose distance
// increased (phase A: layered candidate scan seeded at removed tight
// edges, then a bucket Dijkstra re-settles exactly that set), then an
// improvement cascade handles added edges and decreases (phase B).
// Candidate masks are recomputed only for nodes whose own distance, an
// out-neighbor's distance, or an outgoing channel changed. For the
// dominant churn event — one link flapping on a large mesh — the repair
// touches a handful of nodes per column while a from-scratch column BFS
// touches all of them.

// RecompileStats describes what one incremental recompile did, for the
// reconfig manager's counters and the churn experiment's deterministic
// table-update cost model.
type RecompileStats struct {
	// Full marks a from-scratch fallback (incomparable snapshots, first
	// build, or a delta too large to be worth repairing).
	Full bool
	// ColsShared counts destination columns shared pointer-identically
	// with the previous table; ColsRepaired were patched in place from
	// the previous column; ColsRebuilt ran a full column BFS.
	ColsShared, ColsRepaired, ColsRebuilt int
	// DistShared counts repaired columns whose distance row turned out
	// untouched (mask-only repair), sharing the previous distance slice.
	DistShared int
	// EntriesRewritten counts table entries that actually changed value
	// (repair) or were recomputed wholesale (rebuilt columns, charged at
	// full column size). This is the deterministic "table install" cost
	// the churn experiment converts into cycles.
	EntriesRewritten int64
}

// maxIncrementalDelta bounds, in flipped channels+routers, the delta an
// incremental recompile will attempt; larger epochs (mass failures,
// batch gating) fall back to the parallel cold compile.
func maxIncrementalDelta(n int) int { return n }

// affRepairLimit bounds the exact-increase set a column repair may
// settle before escalating to a full column BFS: past n/8 nodes the
// bucket Dijkstra stops being cheaper than the plain BFS.
func affRepairLimit(n int) int {
	if n < 32 {
		return 4
	}
	return n / 8
}

// Recompile compiles tables for t's current state, reusing m (the tables
// compiled for some earlier state of the same mesh) wherever the delta
// between the two states provably cannot have changed the result. The
// returned Minimal is bit-identical to NewMinimal(t) — the property and
// fuzz tests in incremental_test.go hold it to that — and columns the
// delta did not perturb are shared pointer-identically with m. m itself
// is never mutated (compiled tables stay immutable), so previous epochs
// and cached fingerprints remain valid.
func (m *Minimal) Recompile(t *topology.Topology) (*Minimal, RecompileStats) {
	g1 := t.Flatten()
	n := g1.N
	delta, ok := topology.DiffFlat(m.g, g1)
	if !ok || m.tab == nil || m.tab.n != n || delta.Size() > maxIncrementalDelta(n) {
		return &Minimal{g: g1, tab: compileMinimal(g1)},
			RecompileStats{Full: true, ColsRebuilt: n, EntriesRewritten: 2 * int64(n) * int64(n)}
	}
	if delta.Empty() {
		return &Minimal{g: g1, tab: m.tab}, RecompileStats{ColsShared: n}
	}
	rep := newMinRepairer(g1, &delta)
	// Pass 1: classify every column (share / repair / rebuild) so the
	// non-shared columns can be carved from one arena allocation.
	const (
		clsShare = iota
		clsRepair
		clsRebuild
	)
	cls := make([]uint8, n)
	fresh := 0
	for dst := 0; dst < n; dst++ {
		switch {
		case rep.aliveFlip[dst]:
			cls[dst] = clsRebuild
			fresh++
		case rep.columnPerturbed(m.tab.cols[dst].dist):
			cls[dst] = clsRepair
			fresh++
		}
	}
	t1 := &minTables{n: n, cols: make([]minCol, n)}
	distArena := make([]int16, fresh*n)
	maskArena := make([]uint8, fresh*n)
	var st RecompileStats
	slot := 0
	for dst := 0; dst < n; dst++ {
		prev := m.tab.cols[dst]
		if cls[dst] == clsShare {
			t1.cols[dst] = prev
			st.ColsShared++
			continue
		}
		col := minCol{
			dist: distArena[slot*n : (slot+1)*n : (slot+1)*n],
			mask: maskArena[slot*n : (slot+1)*n : (slot+1)*n],
		}
		slot++
		if cls[dst] == clsRepair {
			if dc, mc, ok := rep.repairColumn(prev, col); ok {
				if dc == 0 {
					col.dist = prev.dist // untouched row: share it too
					st.DistShared++
				}
				t1.cols[dst] = col
				st.ColsRepaired++
				st.EntriesRewritten += int64(dc) + int64(mc)
				continue
			}
			// Exact-increase set blew past the repair limit: the column
			// BFS is cheaper from here.
		}
		rep.queue = compileMinColumn(g1, dst, col, rep.queue)
		t1.cols[dst] = col
		st.ColsRebuilt++
		st.EntriesRewritten += 2 * int64(n)
	}
	return &Minimal{g: g1, tab: t1}, st
}

// minRepairer holds the per-Recompile scratch for column repairs: the
// delta split into endpoint arrays and stamped node sets reused across
// columns (one stamp bump per column instead of O(n) clears).
type minRepairer struct {
	g1 *topology.FlatGraph
	n  int
	// Delta channels as (tail, head) pairs; Adj is dimension-static so
	// heads are identical in both snapshots.
	remU, remV []int32
	addU, addV []int32
	aliveFlip  []bool

	stamp int32
	candS []int32 // phase-A candidate dedupe
	affS  []int32 // exact increase set membership
	setS  []int32 // Dijkstra settled
	chgS  []int32 // distance-changed membership
	dirtS []int32 // mask-dirty membership

	buckets [][]int32 // shared by phase-A levels and the Dijkstra keys
	bkUsed  []int32   // touched bucket indices, for O(touched) cleanup
	aff     []int32
	changed []int32
	dirty   []int32
	queue   []int32 // phase-B cascade + column-BFS scratch
}

func newMinRepairer(g1 *topology.FlatGraph, delta *topology.FlatDelta) *minRepairer {
	n := g1.N
	r := &minRepairer{
		g1:        g1,
		n:         n,
		aliveFlip: make([]bool, n),
		candS:     make([]int32, n),
		affS:      make([]int32, n),
		setS:      make([]int32, n),
		chgS:      make([]int32, n),
		dirtS:     make([]int32, n),
		// Bucket keys: phase-A candidate levels stay < n, but Dijkstra
		// keys derive from boundary values that may sit above the true
		// distance (a neighbor that later decreases), growing by one per
		// increase-set hop — bounded by n + affRepairLimit(n).
		buckets: make([][]int32, n+affRepairLimit(n)+4),
		queue:   make([]int32, 0, n),
	}
	for _, idx := range delta.Removed {
		r.remU = append(r.remU, idx/geom.NumLinkDirs)
		r.remV = append(r.remV, g1.Adj[idx])
	}
	for _, idx := range delta.Added {
		r.addU = append(r.addU, idx/geom.NumLinkDirs)
		r.addV = append(r.addV, g1.Adj[idx])
	}
	for _, x := range delta.AliveChanged {
		r.aliveFlip[x] = true
	}
	return r
}

// columnPerturbed applies the tight-edge conditions above to one
// previous distance row.
func (r *minRepairer) columnPerturbed(row []int16) bool {
	for i, u := range r.remU {
		v := r.remV[i]
		if row[v] >= 0 && row[u] == row[v]+1 {
			return true
		}
	}
	for i, u := range r.addU {
		v := r.addV[i]
		if row[v] >= 0 && (row[u] < 0 || row[u] >= row[v]+1) {
			return true
		}
	}
	return false
}

func (r *minRepairer) push(key int, x int32) {
	if len(r.buckets[key]) == 0 {
		r.bkUsed = append(r.bkUsed, int32(key))
	}
	r.buckets[key] = append(r.buckets[key], x)
}

func (r *minRepairer) clearBuckets() {
	for _, k := range r.bkUsed {
		r.buckets[k] = r.buckets[k][:0]
	}
	r.bkUsed = r.bkUsed[:0]
}

func (r *minRepairer) markDirty(x int32) {
	if r.dirtS[x] != r.stamp {
		r.dirtS[x] = r.stamp
		r.dirty = append(r.dirty, x)
	}
}

func (r *minRepairer) recordChanged(x int32) {
	if r.chgS[x] != r.stamp {
		r.chgS[x] = r.stamp
		r.changed = append(r.changed, x)
	}
}

// repairColumn patches prev (for one destination) into col under the
// repairer's delta. Returns the number of distance and mask entries
// whose value changed, or ok=false when the increase set exceeded the
// repair limit (caller rebuilds the column instead). col must not alias
// prev; on return col holds the exact column a fresh BFS would produce.
func (r *minRepairer) repairColumn(prev minCol, col minCol) (distChanged, maskChanged int, ok bool) {
	g1, n := r.g1, r.n
	copy(col.dist, prev.dist)
	copy(col.mask, prev.mask)
	dist := col.dist
	r.stamp++
	r.aff = r.aff[:0]
	r.changed = r.changed[:0]
	r.dirty = r.dirty[:0]
	r.clearBuckets()
	limit := affRepairLimit(n)

	// Phase A: find the exact set of nodes whose distance increased.
	// Candidates are processed in increasing old-distance order; a
	// candidate survives (stays unchanged) iff it still has a tight
	// out-edge to an unincreased node at the level below. Seeds are the
	// tails of removed tight edges; an increased node propagates
	// candidacy to its tight predecessors one level up.
	lo, hi := n+1, -1
	for i, u := range r.remU {
		v := r.remV[i]
		r.markDirty(u) // out-channel set changed: mask may change
		if dist[v] >= 0 && dist[u] == dist[v]+1 && r.candS[u] != r.stamp {
			r.candS[u] = r.stamp
			d := int(dist[u])
			r.push(d, u)
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
	}
	for _, u := range r.addU {
		r.markDirty(u)
	}
	for d := lo; d <= hi; d++ {
		for bi := 0; bi < len(r.buckets[d]); bi++ {
			x := r.buckets[d][bi]
			supported := false
			for dir := 0; dir < geom.NumLinkDirs; dir++ {
				w := g1.Next[geom.NumLinkDirs*int(x)+dir]
				if w >= 0 && dist[w] == int16(d-1) && r.affS[w] != r.stamp {
					supported = true
					break
				}
			}
			if supported {
				continue
			}
			r.affS[x] = r.stamp
			r.aff = append(r.aff, x)
			if len(r.aff) > limit {
				return 0, 0, false
			}
			// Tight predecessors of x become candidates one level up.
			for dir := 0; dir < geom.NumLinkDirs; dir++ {
				p := g1.Adj[geom.NumLinkDirs*int(x)+dir]
				if p < 0 || g1.Next[geom.NumLinkDirs*int(p)+int(geom.Direction(dir).Opposite())] != x {
					continue
				}
				if dist[p] == int16(d+1) && r.candS[p] != r.stamp {
					r.candS[p] = r.stamp
					r.push(d+1, p)
					if d+1 > hi {
						hi = d + 1
					}
				}
			}
		}
	}

	// Phase A settle: bucket Dijkstra over exactly the increase set,
	// seeded from each member's best unincreased out-neighbor.
	if len(r.aff) > 0 {
		r.clearBuckets()
		for _, a := range r.aff {
			dist[a] = -1
		}
		hi = -1
		for _, a := range r.aff {
			best := -1
			for dir := 0; dir < geom.NumLinkDirs; dir++ {
				w := g1.Next[geom.NumLinkDirs*int(a)+dir]
				if w >= 0 && r.affS[w] != r.stamp && dist[w] >= 0 && (best < 0 || int(dist[w])+1 < best) {
					best = int(dist[w]) + 1
				}
			}
			if best >= 0 {
				r.push(best, a)
				if best > hi {
					hi = best
				}
			}
		}
		for d := 0; d <= hi; d++ {
			for bi := 0; bi < len(r.buckets[d]); bi++ {
				x := r.buckets[d][bi]
				if r.setS[x] == r.stamp {
					continue
				}
				r.setS[x] = r.stamp
				dist[x] = int16(d)
				if prev.dist[x] != int16(d) {
					r.recordChanged(x)
				}
				for dir := 0; dir < geom.NumLinkDirs; dir++ {
					p := g1.Adj[geom.NumLinkDirs*int(x)+dir]
					if p < 0 || g1.Next[geom.NumLinkDirs*int(p)+int(geom.Direction(dir).Opposite())] != x {
						continue
					}
					if r.affS[p] == r.stamp && r.setS[p] != r.stamp {
						r.push(d+1, p)
						if d+1 > hi {
							hi = d + 1
						}
					}
				}
			}
		}
		// Unsettled members are unreachable in the new graph.
		for _, a := range r.aff {
			if r.setS[a] != r.stamp && prev.dist[a] >= 0 {
				r.recordChanged(a)
			}
		}
		r.clearBuckets()
	}

	// Phase B: improvement cascade. Added channels (via their heads) and
	// any node phase A re-settled can only *lower* predecessors now; a
	// plain BFS-style relaxation queue reaches the fixed point.
	q := r.queue[:0]
	for i := range r.addU {
		if v := r.addV[i]; dist[v] >= 0 {
			q = append(q, v)
		}
	}
	for _, x := range r.changed {
		if dist[x] >= 0 {
			q = append(q, x)
		}
	}
	for qi := 0; qi < len(q); qi++ {
		x := q[qi]
		dx := dist[x]
		for dir := 0; dir < geom.NumLinkDirs; dir++ {
			p := g1.Adj[geom.NumLinkDirs*int(x)+dir]
			if p < 0 || g1.Next[geom.NumLinkDirs*int(p)+int(geom.Direction(dir).Opposite())] != x {
				continue
			}
			if dist[p] < 0 || dist[p] > dx+1 {
				dist[p] = dx + 1
				r.recordChanged(p)
				q = append(q, p)
			}
		}
	}
	r.queue = q[:0]

	// Masks: recompute for every node whose distance, out-channel set,
	// or out-neighbor distance changed; everything else is untouched.
	for _, x := range r.changed {
		r.markDirty(x)
		for dir := 0; dir < geom.NumLinkDirs; dir++ {
			p := g1.Adj[geom.NumLinkDirs*int(x)+dir]
			if p >= 0 && g1.Next[geom.NumLinkDirs*int(p)+int(geom.Direction(dir).Opposite())] == x {
				r.markDirty(p)
			}
		}
	}
	for _, x := range r.dirty {
		var m uint8
		if dist[x] > 0 {
			for dir := 0; dir < geom.NumLinkDirs; dir++ {
				nb := g1.Next[geom.NumLinkDirs*int(x)+dir]
				if nb >= 0 && dist[nb] == dist[x]-1 {
					m |= 1 << uint(dir)
				}
			}
		}
		if col.mask[x] != m {
			col.mask[x] = m
			maskChanged++
		}
	}
	for _, x := range r.changed {
		if dist[x] != prev.dist[x] {
			distChanged++
		}
	}
	return distChanged, maskChanged, true
}

// Recompile rebuilds the up*/down* structure for t's current state,
// sharing table columns with u when the spanning trees are effectively
// unchanged. The result is bit-identical to NewUpDownRooted(t, policy)
// with u's policy. Tree construction is always rerun (it is O(V+E) and
// its output feeds the comparison); when the levels and the up/down
// classification of every channel usable in both snapshots are
// unchanged, only columns whose state-graph tight edges the delta
// touched are recompiled — the rest share u's column pages.
func (u *UpDown) Recompile(t *topology.Topology) (*UpDown, RecompileStats) {
	nu := newUpDownTree(t, u.policy)
	n := nu.g.N
	full := func() (*UpDown, RecompileStats) {
		nu.tab = compileUpDown(nu.g, nu.level, nu.upMask)
		return nu, RecompileStats{Full: true, ColsRebuilt: n, EntriesRewritten: 3 * int64(n) * int64(n)}
	}
	delta, ok := topology.DiffFlat(u.g, nu.g)
	if !ok || u.tab == nil || u.tab.n != n || delta.Size() > maxIncrementalDelta(n) {
		return full()
	}
	for i := range nu.level {
		if nu.level[i] != u.level[i] {
			return full()
		}
	}
	// The up/down classification must agree on every channel usable in
	// both snapshots; channels usable in only one are exactly the delta
	// and are checked per column below.
	for v := 0; v < n; v++ {
		if (nu.upMask[v]^u.upMask[v])&u.g.LinkMask[v]&nu.g.LinkMask[v] != 0 {
			return full()
		}
	}
	if delta.Empty() {
		nu.tab = u.tab
		return nu, RecompileStats{ColsShared: n}
	}
	type stateEdge struct {
		u, v   int32
		chanUp bool
	}
	edges := func(idxs []int32, upMask []uint8) []stateEdge {
		var out []stateEdge
		for _, idx := range idxs {
			eu, ev := idx/geom.NumLinkDirs, nu.g.Adj[idx]
			if nu.level[eu] < 0 || nu.level[ev] < 0 {
				continue // dead/unrouted endpoints never enter the state graph
			}
			out = append(out, stateEdge{eu, ev, upMask[eu]&(1<<uint(idx%geom.NumLinkDirs)) != 0})
		}
		return out
	}
	removed := edges(delta.Removed, u.upMask) // classified as of the old snapshot
	added := edges(delta.Added, nu.upMask)    // classified as of the new snapshot
	// Per-column perturbation check on the (node, phase) state graph.
	// An up channel u→v carries state edge (u,up)→(v,up); a down channel
	// carries (u,up)→(v,down) and (u,down)→(v,down).
	perturbed := func(row []int16) bool {
		tightRemoved := func(su, sv int) bool {
			return row[sv] >= 0 && row[su] == row[sv]+1
		}
		improves := func(su, sv int) bool {
			return row[sv] >= 0 && (row[su] < 0 || row[su] >= row[sv]+1)
		}
		for _, e := range removed {
			if e.chanUp {
				if tightRemoved(2*int(e.u)+phaseUp, 2*int(e.v)+phaseUp) {
					return true
				}
			} else if tightRemoved(2*int(e.u)+phaseUp, 2*int(e.v)+phaseDown) ||
				tightRemoved(2*int(e.u)+phaseDown, 2*int(e.v)+phaseDown) {
				return true
			}
		}
		for _, e := range added {
			if e.chanUp {
				if improves(2*int(e.u)+phaseUp, 2*int(e.v)+phaseUp) {
					return true
				}
			} else if improves(2*int(e.u)+phaseUp, 2*int(e.v)+phaseDown) ||
				improves(2*int(e.u)+phaseDown, 2*int(e.v)+phaseDown) {
				return true
			}
		}
		return false
	}
	dirty := make([]int32, 0, 16)
	for dst := 0; dst < n; dst++ {
		if perturbed(u.tab.cols[dst].dist) {
			dirty = append(dirty, int32(dst))
		}
	}
	t1 := &udTables{n: n, cols: make([]udCol, n)}
	copy(t1.cols, u.tab.cols)
	var st RecompileStats
	st.ColsShared = n - len(dirty)
	distArena := make([]int16, 2*len(dirty)*n)
	maskArena := make([]uint8, len(dirty)*n)
	queue := make([]int32, 0, 2*n)
	for i, dst := range dirty {
		col := udCol{
			dist: distArena[2*i*n : 2*(i+1)*n : 2*(i+1)*n],
			mask: maskArena[i*n : (i+1)*n : (i+1)*n],
		}
		queue = compileUDColumn(nu.g, nu.level, nu.upMask, int(dst), col, queue)
		t1.cols[dst] = col
		st.ColsRebuilt++
		st.EntriesRewritten += 3 * int64(n)
	}
	nu.tab = t1
	return nu, st
}

// TableEntries returns the number of table entries a full compile of
// this router writes (the churn experiment's unit of table-install
// cost).
func (m *Minimal) TableEntries() int64 { n := int64(m.tab.n); return 2 * n * n }

// TableEntries is the up*/down* analog: per destination column, 2n state
// distances plus n mask bytes.
func (u *UpDown) TableEntries() int64 { n := int64(u.tab.n); return 3 * n * n }

// MinimalTablesEqual reports whether a and b hold bit-identical compiled
// tables — the incremental-vs-full equality the property tests assert.
func MinimalTablesEqual(a, b *Minimal) bool {
	if a.tab.n != b.tab.n {
		return false
	}
	for dst := range a.tab.cols {
		ca, cb := &a.tab.cols[dst], &b.tab.cols[dst]
		if !int16SlicesEqual(ca.dist, cb.dist) || !bytesEqualU8(ca.mask, cb.mask) {
			return false
		}
	}
	return true
}

// UpDownTablesEqual reports whether a and b route identically: same
// levels, channel classification, state-graph distances, and masks.
func UpDownTablesEqual(a, b *UpDown) bool {
	if a.tab.n != b.tab.n || len(a.level) != len(b.level) {
		return false
	}
	for i := range a.level {
		if a.level[i] != b.level[i] {
			return false
		}
	}
	if !bytesEqualU8(a.upMask, b.upMask) {
		return false
	}
	for dst := range a.tab.cols {
		ca, cb := &a.tab.cols[dst], &b.tab.cols[dst]
		if !int16SlicesEqual(ca.dist, cb.dist) || !bytesEqualU8(ca.mask, cb.mask) {
			return false
		}
	}
	return true
}

// SharesColumn reports whether m and o share destination dst's column
// pages pointer-identically — the COW invariant tests use it.
func (m *Minimal) SharesColumn(o *Minimal, dst geom.NodeID) bool {
	a, b := &m.tab.cols[dst], &o.tab.cols[dst]
	return len(a.dist) > 0 && len(b.dist) > 0 && &a.dist[0] == &b.dist[0] &&
		len(a.mask) > 0 && len(b.mask) > 0 && &a.mask[0] == &b.mask[0]
}

// SharesColumn is the UpDown analog of Minimal.SharesColumn.
func (u *UpDown) SharesColumn(o *UpDown, dst geom.NodeID) bool {
	a, b := &u.tab.cols[dst], &o.tab.cols[dst]
	return len(a.dist) > 0 && len(b.dist) > 0 && &a.dist[0] == &b.dist[0] &&
		len(a.mask) > 0 && len(b.mask) > 0 && &a.mask[0] == &b.mask[0]
}

func int16SlicesEqual(a, b []int16) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func bytesEqualU8(a, b []uint8) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
