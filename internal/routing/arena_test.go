package routing

import (
	"testing"

	"repro/internal/geom"
)

func TestArenaClassSizing(t *testing.T) {
	var a Arena
	cases := []struct{ n, wantCap int }{
		{0, 4}, {1, 4}, {4, 4}, {5, 8}, {8, 8}, {9, 16},
		{100, 128}, {4096, 4096},
	}
	for _, c := range cases {
		span := a.Get(c.n)
		if len(span) != 0 {
			t.Errorf("Get(%d): len = %d, want 0", c.n, len(span))
		}
		if cap(span) != c.wantCap {
			t.Errorf("Get(%d): cap = %d, want %d", c.n, cap(span), c.wantCap)
		}
	}
}

func TestArenaReuse(t *testing.T) {
	var a Arena
	span := a.Get(10)[:10]
	for i := range span {
		span[i] = geom.North
	}
	a.Put(span)
	got := a.Get(10)
	// Same class (16) must come back off the free list, not fresh carving.
	if cap(got) != cap(span) {
		t.Fatalf("recycled span cap = %d, want %d", cap(got), cap(span))
	}
	if len(got) != 0 {
		t.Fatalf("recycled span len = %d, want 0", len(got))
	}
	st := a.Stats()
	if st.Gets != 2 || st.Reuses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v, want Gets=2 Reuses=1 Puts=1", st)
	}
	// Identity: appending into the recycled span lands in the old storage.
	got = append(got, geom.South)
	if &got[0] != &span[0] {
		t.Fatal("recycled span does not share the returned span's storage")
	}
}

func TestArenaOversize(t *testing.T) {
	var a Arena
	span := a.Get(5000)
	if cap(span) < 5000 {
		t.Fatalf("oversize cap = %d, want >= 5000", cap(span))
	}
	st := a.Stats()
	if st.Oversize != 1 {
		t.Fatalf("Oversize = %d, want 1", st.Oversize)
	}
	if st.Blocks != 0 {
		t.Fatalf("oversize Get carved a block: Blocks = %d", st.Blocks)
	}
}

func TestArenaPutForeignSlices(t *testing.T) {
	var a Arena
	// Below the minimum class: silently dropped.
	a.Put(make(Route, 0, 3))
	if st := a.Stats(); st.Puts != 0 {
		t.Fatalf("Put of cap-3 slice counted: Puts = %d", st.Puts)
	}
	// Exact class capacity: accepted and reusable.
	a.Put(make(Route, 0, 8))
	got := a.Get(7)
	if st := a.Stats(); st.Reuses != 1 {
		t.Fatalf("Put of cap-8 slice not reused: %+v", st)
	}
	if cap(got) != 8 {
		t.Fatalf("reused foreign span cap = %d, want 8", cap(got))
	}
}

func TestArenaCopy(t *testing.T) {
	var a Arena
	src := Route{geom.North, geom.East, geom.East}
	dup := a.Copy(src)
	if len(dup) != len(src) {
		t.Fatalf("Copy len = %d, want %d", len(dup), len(src))
	}
	for i := range src {
		if dup[i] != src[i] {
			t.Fatalf("Copy[%d] = %v, want %v", i, dup[i], src[i])
		}
	}
	src[0] = geom.West
	if dup[0] != geom.North {
		t.Fatal("Copy aliases its source")
	}
}

// TestArenaSpanIsolation checks the three-index carve: filling one span
// to its full capacity must not scribble on the next span carved from
// the same block.
func TestArenaSpanIsolation(t *testing.T) {
	var a Arena
	x := a.Get(4)
	y := a.Get(4)[:4]
	for i := range y {
		y[i] = geom.South
	}
	x = x[:cap(x)]
	for i := range x {
		x[i] = geom.North
	}
	// An append at capacity must reallocate, not spill into y.
	x = append(x, geom.North)
	for i := range y {
		if y[i] != geom.South {
			t.Fatalf("neighbor span corrupted at %d: %v", i, y[i])
		}
	}
	if a.Stats().Blocks != 1 {
		t.Fatalf("Blocks = %d, want 1 (both spans from one block)", a.Stats().Blocks)
	}
}
