package routing

import (
	"fmt"
	"sync"

	"repro/internal/topology"
)

// Process-wide compiled-table cache. The paper's evaluation (Figs.
// 8–13) simulates thousands of (seed, injection rate, scheme) points
// over the *same* sampled irregular topologies; compiling the routing
// tables once per (topology content, algorithm) pair and sharing the
// immutable result removes the per-point BFS family entirely. Entries
// are content-addressed by topology.Fingerprint — clones, resampled
// identical topologies, and concurrent sweep workers all converge on
// one compile — and duplicate concurrent requests are deduplicated
// singleflight-style: the first caller compiles, the rest wait on the
// entry's ready channel.
//
// Only immutable-topology callers may use MinimalFor/UpDownFor. Code
// that mutates its topology afterwards (reconfig, the failure-timeline
// experiment) must keep constructing private instances with
// NewMinimal/NewUpDownRooted.

// tableKey identifies one compiled artifact.
type tableKey struct {
	fp  topology.Fingerprint
	alg string
}

// tableEntry is one cache slot; val/bytes are written exactly once,
// before ready is closed.
type tableEntry struct {
	ready chan struct{}
	val   any
	bytes int64
}

var tableCache = struct {
	sync.Mutex
	m        map[tableKey]*tableEntry
	compiles int64
	hits     int64
	bytes    int64
}{m: make(map[tableKey]*tableEntry)}

// TableCacheStats is a snapshot of the compiled-table cache counters.
type TableCacheStats struct {
	// Compiles counts tables built (cache misses); Hits counts requests
	// served from an existing or in-flight entry.
	Compiles, Hits int64
	// Entries and Bytes size the held artifacts.
	Entries int
	Bytes   int64
}

func (s TableCacheStats) String() string {
	total := s.Compiles + s.Hits
	rate := 0.0
	if total > 0 {
		rate = float64(s.Hits) / float64(total) * 100
	}
	return fmt.Sprintf("routing tables: %d compiles, %d hits (%.1f%% hit rate), %d entries, %.1f KiB held",
		s.Compiles, s.Hits, rate, s.Entries, float64(s.Bytes)/1024)
}

// CacheStats returns the current cache counters.
func CacheStats() TableCacheStats {
	tableCache.Lock()
	defer tableCache.Unlock()
	return TableCacheStats{
		Compiles: tableCache.compiles,
		Hits:     tableCache.hits,
		Entries:  len(tableCache.m),
		Bytes:    tableCache.bytes,
	}
}

// ResetTableCache drops every cached table and zeroes the counters.
// Outstanding references stay valid (entries are immutable); this only
// releases the cache's own hold, e.g. between unrelated sweeps or in
// tests that assert compile counts.
func ResetTableCache() {
	tableCache.Lock()
	defer tableCache.Unlock()
	tableCache.m = make(map[tableKey]*tableEntry)
	tableCache.compiles, tableCache.hits, tableCache.bytes = 0, 0, 0
}

// cachedCompile returns the artifact for key, compiling it at most once
// per cache lifetime no matter how many goroutines ask concurrently.
// bytes reports the artifact's footprint for accounting.
func cachedCompile(key tableKey, compile func() (val any, bytes int64)) any {
	tableCache.Lock()
	if e, ok := tableCache.m[key]; ok {
		tableCache.hits++
		tableCache.Unlock()
		<-e.ready
		return e.val
	}
	e := &tableEntry{ready: make(chan struct{})}
	tableCache.m[key] = e
	tableCache.compiles++
	tableCache.Unlock()

	done := false
	defer func() {
		if !done {
			// Compile panicked: withdraw the entry and release waiters
			// (they observe val == nil and re-panic via the type assert
			// in their caller).
			tableCache.Lock()
			delete(tableCache.m, key)
			tableCache.Unlock()
			close(e.ready)
		}
	}()
	val, bytes := compile()
	e.val, e.bytes = val, bytes
	done = true
	tableCache.Lock()
	tableCache.bytes += bytes
	tableCache.Unlock()
	close(e.ready)
	return val
}

// MinimalFor returns the compiled minimal router for t's current
// content, sharing one instance across all callers with fingerprint-
// equal topologies. t must not be mutated afterwards.
func MinimalFor(t *topology.Topology) *Minimal {
	key := tableKey{fp: t.Fingerprint(), alg: "minimal"}
	return cachedCompile(key, func() (any, int64) {
		m := NewMinimal(t)
		return m, m.tableBytes()
	}).(*Minimal)
}

// UpDownFor returns the compiled up*/down* router for t's current
// content under the given root policy, shared like MinimalFor. t must
// not be mutated afterwards.
func UpDownFor(t *topology.Topology, policy RootPolicy) *UpDown {
	key := tableKey{fp: t.Fingerprint(), alg: "updown/" + policy.String()}
	return cachedCompile(key, func() (any, int64) {
		u := NewUpDownRooted(t, policy)
		return u, u.tableBytes()
	}).(*UpDown)
}
