package routing

import (
	"math/rand"

	"repro/internal/geom"
	"repro/internal/topology"
)

// UpDown implements Ariadne-style spanning-tree up*/down* routing
// (paper Section II-A): a BFS spanning tree is built per connected
// component, every channel is classified as "up" (toward the root:
// strictly lower BFS level, ties broken by lower node id) or "down", and a
// legal route never takes an up channel after a down channel. This breaks
// every cyclic channel dependency, making the scheme deadlock-free on any
// surviving topology, at the cost of non-minimal paths.
//
// Routes returned are the shortest *legal* paths, sampled uniformly among
// legal minimal next hops when an rng is supplied.
//
// Like Minimal, an UpDown is fully compiled at construction (table.go):
// state-graph distances and per-(node,dst) candidate masks replace the
// lazy per-destination BFS the type used to run at route time, so
// instances are immutable and safe for concurrent use.
type UpDown struct {
	topo   *topology.Topology
	g      *topology.FlatGraph
	level  []int         // BFS level within the component; -1 if dead
	parent []geom.NodeID // BFS tree parent; InvalidNode at roots/dead
	root   []geom.NodeID // component root per node; InvalidNode if dead
	// upMask[n] has bit d set iff the channel n→d is an "up" channel
	// (usable, both levels known, toward the root ordering).
	upMask []uint8
	tab    *udTables
	// policy is retained so Recompile (incremental.go) rebuilds the
	// spanning trees under the same root-selection rule.
	policy RootPolicy
}

// RootPolicy selects how the spanning-tree root of each component is
// chosen.
type RootPolicy int

// Root selection policies.
const (
	// RootMedian picks the 1-median of the component (minimum total
	// distance) — a stand-in for the tree-optimization heuristics of
	// uDIREC/Router Parking. This is the default.
	RootMedian RootPolicy = iota
	// RootLowestID picks the lowest-id alive node, modeling Ariadne's
	// topology-agnostic leader election (the tree is whatever the elected
	// node's BFS produces).
	RootLowestID
)

// String names the policy for compiled-table cache keys.
func (p RootPolicy) String() string {
	if p == RootLowestID {
		return "lowest_id"
	}
	return "median"
}

// NewUpDown constructs the spanning trees and classification for t with
// the RootMedian policy. The topology must not change afterwards.
func NewUpDown(t *topology.Topology) *UpDown {
	return NewUpDownRooted(t, RootMedian)
}

// NewUpDownRooted constructs the spanning trees using the given root
// policy and compiles the routing tables.
func NewUpDownRooted(t *topology.Topology, policy RootPolicy) *UpDown {
	u := newUpDownTree(t, policy)
	u.tab = compileUpDown(u.g, u.level, u.upMask)
	return u
}

// newUpDownTree builds the spanning trees and channel classification but
// not the compiled tables — the shared prefix of NewUpDownRooted and
// Recompile.
func newUpDownTree(t *topology.Topology, policy RootPolicy) *UpDown {
	n := t.NumNodes()
	u := &UpDown{
		topo:   t,
		g:      t.Flatten(),
		level:  make([]int, n),
		parent: make([]geom.NodeID, n),
		root:   make([]geom.NodeID, n),
		upMask: make([]uint8, n),
		policy: policy,
	}
	for i := range u.level {
		u.level[i] = -1
		u.parent[i] = geom.InvalidNode
		u.root[i] = geom.InvalidNode
	}
	for _, comp := range t.ConnectedComponents() {
		root := comp[0] // components are sorted: lowest id first
		if policy == RootMedian {
			root = chooseRoot(t, comp)
		}
		u.buildTree(root)
	}
	for id := 0; id < n; id++ {
		for i, d := range geom.LinkDirs {
			if u.isUpLive(geom.NodeID(id), d) {
				u.upMask[id] |= 1 << uint(i)
			}
		}
	}
	return u
}

// tableBytes returns the compiled-table footprint for cache accounting.
func (u *UpDown) tableBytes() int64 {
	return u.g.Bytes() + u.tab.bytes() +
		int64(len(u.upMask)) + int64(len(u.level))*8 + int64(len(u.parent))*8 + int64(len(u.root))*8
}

// chooseRoot picks the 1-median of the component (lowest id on ties).
func chooseRoot(t *topology.Topology, comp []geom.NodeID) geom.NodeID {
	best := comp[0]
	bestSum := -1
	for _, cand := range comp {
		dist := t.BFSDistances(cand)
		sum := 0
		for _, m := range comp {
			if dist[m] >= 0 {
				sum += dist[m]
			} else {
				// Unreachable within component (unidirectional faults):
				// penalize heavily.
				sum += t.NumNodes() * t.NumNodes()
			}
		}
		if bestSum < 0 || sum < bestSum || (sum == bestSum && cand < best) {
			best, bestSum = cand, sum
		}
	}
	return best
}

func (u *UpDown) buildTree(root geom.NodeID) {
	u.level[root] = 0
	u.root[root] = root
	// Index cursor, not queue = queue[1:]: re-slicing would pin the
	// whole backing array for the life of the UpDown (the NIRing/BFS
	// retention bug class fixed across the repo).
	queue := []geom.NodeID{root}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for _, d := range geom.LinkDirs {
			if !u.topo.HasLink(cur, d) {
				continue
			}
			nb := u.topo.Neighbor(cur, d)
			if u.level[nb] < 0 {
				u.level[nb] = u.level[cur] + 1
				u.parent[nb] = cur
				u.root[nb] = root
				queue = append(queue, nb)
			}
		}
	}
	// Members not reached (possible only with unidirectional faults
	// inside an undirected component) stay level -1 and are treated as
	// unroutable by this scheme.
}

// Name implements Algorithm.
func (u *UpDown) Name() string { return "updown" }

// Level returns the BFS-tree level of n, or -1 if n is dead or unrouted.
func (u *UpDown) Level(n geom.NodeID) int { return u.level[n] }

// Parent returns the spanning-tree parent of n (InvalidNode at a root).
func (u *UpDown) Parent(n geom.NodeID) geom.NodeID { return u.parent[n] }

// Root returns the component root of n.
func (u *UpDown) Root(n geom.NodeID) geom.NodeID { return u.root[n] }

// isUpLive computes the up-channel classification from the live
// topology; used once at construction to fill upMask.
func (u *UpDown) isUpLive(n geom.NodeID, d geom.Direction) bool {
	if !u.topo.HasLink(n, d) {
		return false
	}
	nb := u.topo.Neighbor(n, d)
	if u.level[n] < 0 || u.level[nb] < 0 {
		return false
	}
	if u.level[nb] != u.level[n] {
		return u.level[nb] < u.level[n]
	}
	return nb < n
}

// IsUp reports whether the directed channel from n in direction d is an
// "up" channel (toward the root ordering). Channels between different
// components or involving dead nodes report false.
func (u *UpDown) IsUp(n geom.NodeID, d geom.Direction) bool {
	if !d.IsLink() {
		return false
	}
	// Link directions are 0..3, so the direction doubles as the bit index.
	return u.upMask[n]&(1<<uint(d)) != 0
}

// TurnLegal reports whether a packet that entered node n via heading
// `in` (i.e. over channel prev→n) may leave via direction `out` under the
// up*/down* rule: the down→up turn is forbidden, as are U-turns.
func (u *UpDown) TurnLegal(n geom.NodeID, in, out geom.Direction) bool {
	if out == in.Opposite() {
		return false
	}
	prev := u.topo.Neighbor(n, in.Opposite())
	if prev == geom.InvalidNode {
		return false
	}
	cameDown := !u.IsUp(prev, in) // channel prev→n was a down channel
	goesUp := u.IsUp(n, out)
	return !(cameDown && goesUp)
}

// Distance returns the shortest legal up*/down* hop count from src to dst,
// or -1 if unreachable under this scheme.
func (u *UpDown) Distance(src, dst geom.NodeID) int {
	if u.level[src] < 0 || u.level[dst] < 0 {
		return -1
	}
	return int(u.tab.cols[dst].dist[2*int(src)+phaseUp])
}

// Route implements Algorithm: the shortest legal up*/down* route, sampled
// uniformly among legal minimal next hops when rng is non-nil.
func (u *UpDown) Route(src, dst geom.NodeID, rng *rand.Rand) (Route, bool) {
	return u.AppendRoute(nil, src, dst, rng)
}

// AppendRoute implements RouteAppender: same sampling as Route, hops
// appended onto buf. Per hop: one candidate-mask byte (nibble-selected
// by the current phase), one next-hop word, one up-mask bit for the
// phase transition.
func (u *UpDown) AppendRoute(buf Route, src, dst geom.NodeID, rng *rand.Rand) (Route, bool) {
	if src == dst {
		return buf, u.level[src] >= 0
	}
	col := &u.tab.cols[dst]
	if u.level[src] < 0 || col.dist[2*int(src)+phaseUp] < 0 {
		return buf, false
	}
	route := buf
	cur, phase := int(src), phaseUp
	for cur != int(dst) {
		m := col.mask[cur]
		if phase == phaseUp {
			m &= 0x0f
		} else {
			m >>= 4
		}
		d := pickDir(m, rng)
		if d == geom.Invalid {
			return buf, false
		}
		route = append(route, d)
		if u.upMask[cur]&(1<<uint(d)) != 0 {
			phase = phaseUp
		} else {
			phase = phaseDown
		}
		cur = int(u.g.Next[geom.NumLinkDirs*cur+int(d)])
	}
	return route, true
}

// TreeNextHop returns the next-hop direction from n toward dst using pure
// spanning-tree routing (up to the lowest common ancestor, then down).
// This is the per-router escape-path table of the escape-VC baseline
// (Router Parking style). It returns Local when n == dst and Invalid when
// dst is in a different component or either node is dead.
func (u *UpDown) TreeNextHop(n, dst geom.NodeID) geom.Direction {
	if u.level[n] < 0 || u.level[dst] < 0 || u.root[n] != u.root[dst] {
		return geom.Invalid
	}
	if n == dst {
		return geom.Local
	}
	// Walk dst's ancestor chain up to n's level; if it passes through n,
	// descend toward dst, else go to parent.
	walk := dst
	var below geom.NodeID = geom.InvalidNode
	for u.level[walk] > u.level[n] {
		below = walk
		walk = u.parent[walk]
	}
	var next geom.NodeID
	if walk == n {
		next = below // dst is in n's subtree
	} else {
		next = u.parent[n]
	}
	return geom.DirectionBetween(u.topo.Coord(n), u.topo.Coord(next))
}

// DependencyAcyclic verifies that the channel-dependency graph induced by
// legal up*/down* turns contains no cycle — the theoretical guarantee the
// spanning-tree baseline rests on. Exposed for property tests.
func (u *UpDown) DependencyAcyclic() bool {
	// Vertices: directed channels (n, d). Edge (a→b, b→c) iff TurnLegal.
	type ch struct {
		n geom.NodeID
		d geom.Direction
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[ch]int8)
	var dfs func(c ch) bool
	dfs = func(c ch) bool {
		color[c] = gray
		mid := u.topo.Neighbor(c.n, c.d)
		for _, out := range geom.LinkDirs {
			if !u.topo.HasLink(mid, out) || !u.TurnLegal(mid, c.d, out) {
				continue
			}
			next := ch{mid, out}
			switch color[next] {
			case gray:
				return true
			case white:
				if dfs(next) {
					return true
				}
			}
		}
		color[c] = black
		return false
	}
	for id := 0; id < u.topo.NumNodes(); id++ {
		n := geom.NodeID(id)
		for _, d := range geom.LinkDirs {
			if !u.topo.HasLink(n, d) {
				continue
			}
			c := ch{n, d}
			if color[c] == white && dfs(c) {
				return false
			}
		}
	}
	return true
}

// TreeRoute returns the pure spanning-tree path from src to dst (up to
// the lowest common ancestor, then down), or ok=false across components.
func (u *UpDown) TreeRoute(src, dst geom.NodeID) (Route, bool) {
	return u.AppendTreeRoute(nil, src, dst)
}

// AppendTreeRoute is TreeRoute with the hops appended onto buf.
func (u *UpDown) AppendTreeRoute(buf Route, src, dst geom.NodeID) (Route, bool) {
	if u.level[src] < 0 || u.level[dst] < 0 || u.root[src] != u.root[dst] {
		return buf, false
	}
	route := buf
	cur := src
	for cur != dst {
		d := u.TreeNextHop(cur, dst)
		if !d.IsLink() {
			return buf, false
		}
		route = append(route, d)
		cur = u.topo.Neighbor(cur, d)
	}
	return route, true
}

// TreeAlgorithm adapts the spanning tree to the Algorithm interface:
// every packet follows the tree path through the lowest common ancestor.
// This is the conservative tree-routing baseline the paper's introduction
// describes ("messages are routed via the root"); the UpDown Algorithm
// itself is the stronger all-links up*/down* variant.
func (u *UpDown) TreeAlgorithm() Algorithm { return treeAlg{u} }

type treeAlg struct{ u *UpDown }

func (t treeAlg) Name() string { return "spanning_tree" }

func (t treeAlg) Route(src, dst geom.NodeID, _ *rand.Rand) (Route, bool) {
	return t.u.TreeRoute(src, dst)
}

func (t treeAlg) AppendRoute(buf Route, src, dst geom.NodeID, _ *rand.Rand) (Route, bool) {
	return t.u.AppendTreeRoute(buf, src, dst)
}
