package routing

import (
	"math/rand"

	"repro/internal/geom"
	"repro/internal/topology"
)

// Minimal routes packets along true shortest paths of the (possibly
// irregular) topology, sampling uniformly at random among the minimal
// next hops at every node. This is the unrestricted, deadlock-prone
// routing that Static Bubble and the regular VCs of the escape-VC scheme
// use (paper Section II-D).
//
// A Minimal is compiled at construction: all-pairs distances and
// per-(node,dst) next-hop candidate masks over a flat snapshot of the
// topology (see table.go). Instances are immutable afterwards and safe
// for concurrent use from any number of goroutines.
type Minimal struct {
	g   *topology.FlatGraph
	tab *minTables
}

// NewMinimal compiles a minimal router over t's current state. Later
// mutations of t are not seen; rebuild (reconfig does) or use MinimalFor
// to share compiled tables across identical topologies.
func NewMinimal(t *topology.Topology) *Minimal {
	g := t.Flatten()
	return &Minimal{g: g, tab: compileMinimal(g)}
}

// Name implements Algorithm.
func (m *Minimal) Name() string { return "minimal" }

// tableBytes returns the compiled-table footprint for cache accounting.
func (m *Minimal) tableBytes() int64 { return m.g.Bytes() + m.tab.bytes() }

// Reachable reports whether dst can be reached from src.
func (m *Minimal) Reachable(src, dst geom.NodeID) bool {
	return m.Distance(src, dst) >= 0
}

// Distance returns the shortest directed-hop distance from src to dst, or
// -1 if unreachable.
func (m *Minimal) Distance(src, dst geom.NodeID) int {
	n := m.tab.n
	if src < 0 || dst < 0 || int(src) >= n || int(dst) >= n {
		return -1
	}
	return int(m.tab.cols[dst].dist[src])
}

// NextHopMask returns the compiled candidate mask for (src, dst): bit i
// set means geom.LinkDirs[i] is a minimal next hop. Zero when src == dst,
// either node is out of range, or dst is unreachable from src. The
// adaptive controller scores exactly this candidate set per hop.
func (m *Minimal) NextHopMask(src, dst geom.NodeID) uint8 {
	n := m.tab.n
	if src < 0 || dst < 0 || int(src) >= n || int(dst) >= n {
		return 0
	}
	return m.tab.cols[dst].mask[src]
}

// NeighborOf returns the node reached over the usable channel src→d at
// compile time, or InvalidNode (flat-snapshot Neighbor/HasLink).
func (m *Minimal) NeighborOf(src geom.NodeID, d geom.Direction) geom.NodeID {
	return m.g.NeighborOf(src, d)
}

// Route implements Algorithm: it samples one shortest path uniformly at
// random among the minimal next hops at each step. With a nil rng the
// first minimal direction in N,E,S,W order is chosen (deterministic).
func (m *Minimal) Route(src, dst geom.NodeID, rng *rand.Rand) (Route, bool) {
	return m.AppendRoute(nil, src, dst, rng)
}

// AppendRoute implements RouteAppender: same sampling as Route, hops
// appended onto buf. The whole walk is table loads: one candidate-mask
// byte and one next-hop word per hop.
func (m *Minimal) AppendRoute(buf Route, src, dst geom.NodeID, rng *rand.Rand) (Route, bool) {
	if src == dst {
		return buf, int(src) < m.tab.n && src >= 0 && m.g.Alive[src]
	}
	n := m.tab.n
	if src < 0 || dst < 0 || int(src) >= n || int(dst) >= n {
		return buf, false
	}
	col := &m.tab.cols[dst]
	if !m.g.Alive[src] || col.dist[src] < 0 {
		return buf, false
	}
	route := buf
	cur := int(src)
	for cur != int(dst) {
		d := pickDir(col.mask[cur], rng)
		if d == geom.Invalid {
			// Cannot happen on a consistent distance table.
			return buf, false
		}
		route = append(route, d)
		cur = int(m.g.Next[geom.NumLinkDirs*cur+int(d)])
	}
	return route, true
}

// AppendRouteOneShot computes a single minimal route over t without
// compiling all-pairs tables: one reverse BFS for dst, then the same
// candidate walk (identical rng draws and picks as a compiled Minimal).
// For one-off queries on throwaway topology views — reconfig's
// pending-gate detours — where a full compile would be wasted.
func AppendRouteOneShot(t *topology.Topology, buf Route, src, dst geom.NodeID, rng *rand.Rand) (Route, bool) {
	if src == dst {
		return buf, t.RouterAlive(src)
	}
	dist := t.ReverseBFSDistances(dst)
	if !t.RouterAlive(src) || dist[src] < 0 {
		return buf, false
	}
	route := buf
	cur := src
	for cur != dst {
		var m uint8
		for i, d := range geom.LinkDirs {
			if !t.HasLink(cur, d) {
				continue
			}
			if dist[t.Neighbor(cur, d)] == dist[cur]-1 {
				m |= 1 << uint(i)
			}
		}
		d := pickDir(m, rng)
		if d == geom.Invalid {
			return buf, false
		}
		route = append(route, d)
		cur = t.Neighbor(cur, d)
	}
	return route, true
}

// XY routes dimension-ordered: all X (East/West) hops first, then all Y
// (North/South) hops. It is only valid on a fully healthy mesh; Route
// reports ok=false if any hop would use a dead channel.
type XY struct {
	topo *topology.Topology
}

// NewXY builds an XY router over t.
func NewXY(t *topology.Topology) *XY { return &XY{topo: t} }

// Name implements Algorithm.
func (x *XY) Name() string { return "xy" }

// Route implements Algorithm. rng is unused (XY is deterministic).
func (x *XY) Route(src, dst geom.NodeID, rng *rand.Rand) (Route, bool) {
	return x.AppendRoute(nil, src, dst, rng)
}

// AppendRoute implements RouteAppender.
func (x *XY) AppendRoute(buf Route, src, dst geom.NodeID, _ *rand.Rand) (Route, bool) {
	if !x.topo.RouterAlive(src) || !x.topo.RouterAlive(dst) {
		return buf, false
	}
	b := x.topo.Coord(dst)
	route := buf
	cur := src
	step := func(d geom.Direction) bool {
		if !x.topo.HasLink(cur, d) {
			return false
		}
		route = append(route, d)
		cur = x.topo.Neighbor(cur, d)
		return true
	}
	for x.topo.Coord(cur).X < b.X {
		if !step(geom.East) {
			return buf, false
		}
	}
	for x.topo.Coord(cur).X > b.X {
		if !step(geom.West) {
			return buf, false
		}
	}
	for x.topo.Coord(cur).Y < b.Y {
		if !step(geom.North) {
			return buf, false
		}
	}
	for x.topo.Coord(cur).Y > b.Y {
		if !step(geom.South) {
			return buf, false
		}
	}
	return route, true
}
