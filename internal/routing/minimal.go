package routing

import (
	"math/rand"

	"repro/internal/geom"
	"repro/internal/topology"
)

// Minimal routes packets along true shortest paths of the (possibly
// irregular) topology, sampling uniformly at random among the minimal
// next hops at every node. This is the unrestricted, deadlock-prone
// routing that Static Bubble and the regular VCs of the escape-VC scheme
// use (paper Section II-D).
type Minimal struct {
	topo *topology.Topology
	// distTo[dst][n] is the directed-hop distance from n to dst.
	distTo map[geom.NodeID][]int
}

// NewMinimal builds a minimal router over t. Distance tables are computed
// lazily per destination and cached; the topology must not change after
// construction.
func NewMinimal(t *topology.Topology) *Minimal {
	return &Minimal{topo: t, distTo: make(map[geom.NodeID][]int)}
}

// Name implements Algorithm.
func (m *Minimal) Name() string { return "minimal" }

func (m *Minimal) dist(dst geom.NodeID) []int {
	if d, ok := m.distTo[dst]; ok {
		return d
	}
	d := m.topo.ReverseBFSDistances(dst)
	m.distTo[dst] = d
	return d
}

// Reachable reports whether dst can be reached from src.
func (m *Minimal) Reachable(src, dst geom.NodeID) bool {
	if !m.topo.RouterAlive(src) || !m.topo.RouterAlive(dst) {
		return false
	}
	return m.dist(dst)[src] >= 0
}

// Distance returns the shortest directed-hop distance from src to dst, or
// -1 if unreachable.
func (m *Minimal) Distance(src, dst geom.NodeID) int {
	if !m.topo.RouterAlive(src) {
		return -1
	}
	return m.dist(dst)[src]
}

// Route implements Algorithm: it samples one shortest path uniformly at
// random among the minimal next hops at each step. With a nil rng the
// first minimal direction in N,E,S,W order is chosen (deterministic).
func (m *Minimal) Route(src, dst geom.NodeID, rng *rand.Rand) (Route, bool) {
	return m.AppendRoute(nil, src, dst, rng)
}

// AppendRoute implements RouteAppender: same sampling as Route, hops
// appended onto buf.
func (m *Minimal) AppendRoute(buf Route, src, dst geom.NodeID, rng *rand.Rand) (Route, bool) {
	if src == dst {
		return buf, m.topo.RouterAlive(src)
	}
	dist := m.dist(dst)
	if !m.topo.RouterAlive(src) || dist[src] < 0 {
		return buf, false
	}
	route := buf
	cur := src
	for cur != dst {
		var choices [geom.NumLinkDirs]geom.Direction
		n := 0
		for _, d := range geom.LinkDirs {
			if !m.topo.HasLink(cur, d) {
				continue
			}
			nb := m.topo.Neighbor(cur, d)
			if dist[nb] == dist[cur]-1 {
				choices[n] = d
				n++
			}
		}
		if n == 0 {
			// Cannot happen on a consistent distance table.
			return buf, false
		}
		pick := choices[0]
		if rng != nil && n > 1 {
			pick = choices[rng.Intn(n)]
		}
		route = append(route, pick)
		cur = m.topo.Neighbor(cur, pick)
	}
	return route, true
}

// XY routes dimension-ordered: all X (East/West) hops first, then all Y
// (North/South) hops. It is only valid on a fully healthy mesh; Route
// reports ok=false if any hop would use a dead channel.
type XY struct {
	topo *topology.Topology
}

// NewXY builds an XY router over t.
func NewXY(t *topology.Topology) *XY { return &XY{topo: t} }

// Name implements Algorithm.
func (x *XY) Name() string { return "xy" }

// Route implements Algorithm. rng is unused (XY is deterministic).
func (x *XY) Route(src, dst geom.NodeID, rng *rand.Rand) (Route, bool) {
	return x.AppendRoute(nil, src, dst, rng)
}

// AppendRoute implements RouteAppender.
func (x *XY) AppendRoute(buf Route, src, dst geom.NodeID, _ *rand.Rand) (Route, bool) {
	if !x.topo.RouterAlive(src) || !x.topo.RouterAlive(dst) {
		return buf, false
	}
	b := x.topo.Coord(dst)
	route := buf
	cur := src
	step := func(d geom.Direction) bool {
		if !x.topo.HasLink(cur, d) {
			return false
		}
		route = append(route, d)
		cur = x.topo.Neighbor(cur, d)
		return true
	}
	for x.topo.Coord(cur).X < b.X {
		if !step(geom.East) {
			return buf, false
		}
	}
	for x.topo.Coord(cur).X > b.X {
		if !step(geom.West) {
			return buf, false
		}
	}
	for x.topo.Coord(cur).Y < b.Y {
		if !step(geom.North) {
			return buf, false
		}
	}
	for x.topo.Coord(cur).Y > b.Y {
		if !step(geom.South) {
			return buf, false
		}
	}
	return route, true
}
