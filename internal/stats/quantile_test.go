package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"
)

var quantilePs = []float64{0, 1, 10, 25, 50, 75, 90, 99, 99.9, 100}

// TestQuantileExactSmallN: below the spill threshold the estimator must
// agree exactly with the sorted-reference nearest-rank percentile
// (Sample.Percentile) at every probe point.
func TestQuantileExactSmallN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 17, quantileExactCap} {
		var q Quantile
		var s Sample
		for i := 0; i < n; i++ {
			v := math.Floor(rng.Float64() * 1e4)
			q.Add(v)
			s.Add(v)
		}
		for _, p := range quantilePs {
			if got, want := q.Percentile(p), s.Percentile(p); got != want {
				t.Fatalf("n=%d p%.1f: got %v want %v", n, p, got, want)
			}
		}
		if q.Min() != s.Min() || q.Max() != s.Max() || math.Abs(q.Mean()-s.Mean()) > 1e-9 {
			t.Fatalf("n=%d: min/max/mean diverged from Sample", n)
		}
	}
}

// TestQuantileBoundedError: on 1e6 samples from a heavy-tailed
// distribution every queried percentile must be within one bucket's
// relative width of the sorted reference, and min/max stay exact.
func TestQuantileBoundedError(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 1_000_000
	var q Quantile
	ref := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		// Integer "latencies" spanning ~5 decades, log-uniform-ish, plus
		// a spike of zeros (recovery events with no affected packets).
		var v float64
		if rng.Intn(50) == 0 {
			v = 0
		} else {
			v = math.Floor(math.Exp(rng.Float64() * 11.5))
		}
		q.Add(v)
		ref = append(ref, v)
	}
	sort.Float64s(ref)
	if q.N() != n {
		t.Fatalf("count: got %d want %d", q.N(), n)
	}
	if q.Min() != ref[0] || q.Max() != ref[n-1] {
		t.Fatalf("extremes: got [%v,%v] want [%v,%v]", q.Min(), q.Max(), ref[0], ref[n-1])
	}
	// One bucket spans a factor of (1 + 1/quantileSub); the midpoint is
	// within half that of any member, so allow a shade over half-width.
	relTol := 0.6 / quantileSub
	for _, p := range quantilePs {
		rank := int(math.Ceil(p/100*float64(n))) - 1
		if rank < 0 {
			rank = 0
		}
		want := ref[rank]
		got := q.Percentile(p)
		if want == 0 {
			if got != 0 {
				t.Fatalf("p%.1f: got %v want 0", p, got)
			}
			continue
		}
		if rel := math.Abs(got-want) / want; rel > relTol {
			t.Fatalf("p%.1f: got %v want %v (rel err %.4f > %.4f)", p, got, want, rel, relTol)
		}
	}
}

// TestQuantileMergeMatchesSingleStream: sharded collection — K sketches
// each seeing a slice of the stream, merged in arbitrary order — must
// answer every percentile query identically to one sketch that saw the
// whole stream, once the stream is past the exact cap (bucket counts
// are order-independent).
func TestQuantileMergeMatchesSingleStream(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 40_000
	const shards = 8
	var single Quantile
	parts := make([]Quantile, shards)
	for i := 0; i < n; i++ {
		v := math.Floor(rng.Float64() * 1e5)
		single.Add(v)
		parts[i%shards].Add(v)
	}
	var merged Quantile
	for _, i := range []int{5, 0, 7, 2, 6, 1, 4, 3} { // arbitrary merge order
		merged.Merge(&parts[i])
	}
	if merged.N() != single.N() || merged.Min() != single.Min() || merged.Max() != single.Max() {
		t.Fatalf("merge bookkeeping diverged: n=%d/%d", merged.N(), single.N())
	}
	for p := 0.0; p <= 100; p += 0.5 {
		if got, want := merged.Percentile(p), single.Percentile(p); got != want {
			t.Fatalf("p%.1f: merged %v != single %v", p, got, want)
		}
	}
}

// TestQuantileMergeExactMode: merging small exact sketches stays exact,
// and merging exact into spilled keeps the count right.
func TestQuantileMergeExactMode(t *testing.T) {
	var a, b Quantile
	var s Sample
	for i := 0; i < 40; i++ {
		a.Add(float64(i * 3))
		s.Add(float64(i * 3))
	}
	for i := 0; i < 40; i++ {
		b.Add(float64(1000 - i))
		s.Add(float64(1000 - i))
	}
	a.Merge(&b)
	for _, p := range quantilePs {
		if got, want := a.Percentile(p), s.Percentile(p); got != want {
			t.Fatalf("exact merge p%.1f: got %v want %v", p, got, want)
		}
	}
	// Exact into spilled: counts and extremes must hold.
	var big Quantile
	for i := 0; i < 10*quantileExactCap; i++ {
		big.Add(float64(i))
	}
	big.Merge(&a)
	if big.N() != int64(10*quantileExactCap+80) {
		t.Fatalf("spilled merge count: %d", big.N())
	}
	if big.Max() != float64(10*quantileExactCap-1) || big.Min() != 0 {
		t.Fatalf("spilled merge extremes: [%v,%v]", big.Min(), big.Max())
	}
}

// TestQuantileJSONRoundTrip: the sweep cache persists cells as JSON; a
// round-tripped sketch must answer every query identically, in both
// exact and spilled modes.
func TestQuantileJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{0, 5, quantileExactCap, 5000} {
		var q Quantile
		for i := 0; i < n; i++ {
			q.Add(math.Floor(rng.Float64() * 1e4))
		}
		raw, err := json.Marshal(&q)
		if err != nil {
			t.Fatalf("n=%d: marshal: %v", n, err)
		}
		var back Quantile
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("n=%d: unmarshal: %v", n, err)
		}
		if back.N() != q.N() || back.Min() != q.Min() || back.Max() != q.Max() || back.Mean() != q.Mean() {
			t.Fatalf("n=%d: bookkeeping changed across round-trip", n)
		}
		for _, p := range quantilePs {
			if got, want := back.Percentile(p), q.Percentile(p); got != want {
				t.Fatalf("n=%d p%.1f: round-trip %v != %v", n, p, got, want)
			}
		}
	}
}

// TestQuantileDegenerateInputs: negatives clamp, zeros are exact, and
// the zero value answers queries without panicking.
func TestQuantileDegenerateInputs(t *testing.T) {
	var empty Quantile
	if empty.Percentile(50) != 0 || empty.N() != 0 || empty.Mean() != 0 {
		t.Fatal("zero-value queries must return 0")
	}
	var q Quantile
	q.Add(-5)
	q.Add(math.NaN())
	if q.Min() != 0 || q.Max() != 0 || q.Percentile(100) != 0 {
		t.Fatalf("clamped inputs: min=%v max=%v", q.Min(), q.Max())
	}
	var z Quantile
	for i := 0; i < 4*quantileExactCap; i++ {
		z.Add(0)
	}
	z.Add(7)
	if z.Percentile(50) != 0 || z.Percentile(100) != 7 {
		t.Fatalf("zero-heavy stream: p50=%v p100=%v", z.Percentile(50), z.Percentile(100))
	}
}
