package stats

import (
	"strings"
	"testing"
	"time"
)

func TestProgressCounts(t *testing.T) {
	p := NewProgress()
	p.Grow(10)
	p.ObserveExecuted(100*time.Millisecond, true)
	p.ObserveExecuted(300*time.Millisecond, false)
	p.ObserveCached()
	s := p.Snapshot()
	if s.Total != 10 || s.Done != 3 || s.Cached != 1 || s.Failed != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.MeanJob != 200*time.Millisecond {
		t.Fatalf("MeanJob = %v, want 200ms", s.MeanJob)
	}
	if s.Rate <= 0 || s.ETA <= 0 {
		t.Fatalf("rate/ETA not estimated: %+v", s)
	}
}

func TestProgressGrowAccumulates(t *testing.T) {
	p := NewProgress()
	p.Grow(3)
	p.Grow(4)
	if s := p.Snapshot(); s.Total != 7 {
		t.Fatalf("Total = %d, want 7", s.Total)
	}
}

func TestProgressETAZeroWhenDone(t *testing.T) {
	p := NewProgress()
	p.Grow(1)
	p.ObserveExecuted(time.Millisecond, true)
	if s := p.Snapshot(); s.ETA != 0 {
		t.Fatalf("ETA = %v on a finished sweep, want 0", s.ETA)
	}
}

func TestProgressSnapshotString(t *testing.T) {
	s := ProgressSnapshot{
		Total: 120, Done: 37, Cached: 12, Failed: 0,
		Elapsed: 4 * time.Second,
		MeanJob: 112 * time.Millisecond,
		Rate:    8.4,
		ETA:     9 * time.Second,
	}
	got := s.String()
	for _, want := range []string{"37/120", "(31%)", "12 cached", "0 failed", "8.4 jobs/s", "112ms", "ETA 9s"} {
		if !strings.Contains(got, want) {
			t.Fatalf("String() = %q, missing %q", got, want)
		}
	}
}

func TestProgressEmptySnapshot(t *testing.T) {
	s := NewProgress().Snapshot()
	if s.Rate != 0 || s.ETA != 0 || s.Done != 0 {
		t.Fatalf("fresh snapshot = %+v", s)
	}
	// String must not divide by zero.
	if out := s.String(); !strings.Contains(out, "0/0") {
		t.Fatalf("String() = %q", out)
	}
}
