package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 6, 8} {
		s.Add(v)
	}
	if s.N() != 4 || s.Mean() != 5 || s.Min() != 2 || s.Max() != 8 {
		t.Fatalf("sample = %v", s.String())
	}
	if math.Abs(s.Stddev()-math.Sqrt(5)) > 1e-12 {
		t.Fatalf("stddev = %v", s.Stddev())
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Stddev() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty sample should be all zeros")
	}
	if s.Stable(1, 0.1) {
		t.Fatal("empty sample cannot be stable")
	}
}

func TestPercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(50); got != 50 {
		t.Fatalf("p50 = %v", got)
	}
	if got := s.Percentile(99); got != 99 {
		t.Fatalf("p99 = %v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
}

func TestStable(t *testing.T) {
	var s Sample
	for i := 0; i < 40; i++ {
		s.Add(10)
	}
	if !s.Stable(20, 0.05) {
		t.Fatal("constant sample must be stable")
	}
	var d Sample
	for i := 0; i < 40; i++ {
		d.Add(float64(i)) // strong trend
	}
	if d.Stable(20, 0.05) {
		t.Fatal("trending sample must not be stable")
	}
}

func TestStableAllZeros(t *testing.T) {
	var s Sample
	for i := 0; i < 30; i++ {
		s.Add(0)
	}
	if !s.Stable(10, 0.05) {
		t.Fatal("all-zero sample is stable")
	}
}

func TestMeanMatchesNaiveProperty(t *testing.T) {
	f := func(vals []float64) bool {
		var s Sample
		var sum float64
		ok := true
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				continue
			}
			s.Add(v)
			sum += v
		}
		if s.N() == 0 {
			return s.Mean() == 0
		}
		want := sum / float64(s.N())
		if want != 0 {
			ok = math.Abs(s.Mean()-want)/math.Abs(want) < 1e-9
		} else {
			ok = math.Abs(s.Mean()) < 1e-9
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	for _, v := range []float64{0.05, 0.15, 0.15, 0.95, 1.5, -0.5} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Bins[0] != 2 { // 0.05 and clamped -0.5
		t.Fatalf("bin 0 = %d", h.Bins[0])
	}
	if h.Bins[1] != 2 {
		t.Fatalf("bin 1 = %d", h.Bins[1])
	}
	if h.Bins[9] != 2 { // 0.95 and clamped 1.5
		t.Fatalf("bin 9 = %d", h.Bins[9])
	}
	cum := h.CumulativeFraction()
	if cum[9] != 1.0 {
		t.Fatalf("final cumulative = %v", cum[9])
	}
	if cum[0] != 2.0/6 {
		t.Fatalf("first cumulative = %v", cum[0])
	}
	// Monotone non-decreasing.
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatal("cumulative fraction must be monotone")
		}
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(1, 0, 10)
}

func TestLatencyCollector(t *testing.T) {
	var c LatencyCollector
	for i := int64(1); i <= 100; i++ {
		c.Observe(i)
	}
	if c.N() != 100 || c.Mean() != 50.5 || c.Max() != 100 {
		t.Fatalf("collector: n=%d mean=%v max=%v", c.N(), c.Mean(), c.Max())
	}
	if c.P(99) != 99 || c.P(50) != 50 {
		t.Fatalf("percentiles: p99=%v p50=%v", c.P(99), c.P(50))
	}
}
