// Package stats provides the aggregation helpers the experiment harness
// uses to average metrics over sampled irregular topologies: running
// samples, trend-stabilization detection (the paper grows the topology
// sample until the studied average stabilizes, Section V-A), and simple
// histograms for the Fig. 3 heat map.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates scalar observations.
type Sample struct {
	n      int
	sum    float64
	sumSq  float64
	minV   float64
	maxV   float64
	values []float64
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	if s.n == 0 || v < s.minV {
		s.minV = v
	}
	if s.n == 0 || v > s.maxV {
		s.maxV = v
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
	s.values = append(s.values, v)
}

// N returns the observation count.
func (s *Sample) N() int { return s.n }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min and Max return the extremes (0 for an empty sample).
func (s *Sample) Min() float64 { return s.minV }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.maxV }

// Stddev returns the population standard deviation.
func (s *Sample) Stddev() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by nearest-rank.
func (s *Sample) Percentile(p float64) float64 {
	if s.n == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p/100*float64(s.n))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= s.n {
		rank = s.n - 1
	}
	return sorted[rank]
}

// Stable reports whether the running mean has stabilized: the mean of the
// last half of the observations is within tol (relative) of the overall
// mean, given at least minN observations. This is the paper's "increase
// the number of topologies till the trend stabilizes" criterion.
func (s *Sample) Stable(minN int, tol float64) bool {
	if s.n < minN {
		return false
	}
	half := s.values[s.n/2:]
	var hs float64
	for _, v := range half {
		hs += v
	}
	hm := hs / float64(len(half))
	m := s.Mean()
	if m == 0 {
		return hm == 0
	}
	return math.Abs(hm-m)/math.Abs(m) <= tol
}

func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.4g min=%.4g max=%.4g sd=%.4g",
		s.n, s.Mean(), s.minV, s.maxV, s.Stddev())
}

// Histogram counts observations into fixed-width bins over [lo, hi);
// out-of-range values clamp to the edge bins.
type Histogram struct {
	Lo, Hi float64
	Bins   []int
	total  int
}

// NewHistogram builds a histogram with n bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	idx := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Bins) {
		idx = len(h.Bins) - 1
	}
	h.Bins[idx]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// CumulativeFraction returns, per bin, the fraction of observations at or
// below that bin — the cumulative distribution the Fig. 3 heat map plots.
func (h *Histogram) CumulativeFraction() []float64 {
	out := make([]float64, len(h.Bins))
	run := 0
	for i, c := range h.Bins {
		run += c
		if h.total > 0 {
			out[i] = float64(run) / float64(h.total)
		}
	}
	return out
}

// LatencyCollector accumulates per-packet latencies (install its Observe
// via the simulator's OnDeliver hook) and reports percentiles.
type LatencyCollector struct {
	sample Sample
}

// Observe records one delivered packet's latency.
func (c *LatencyCollector) Observe(latency int64) { c.sample.Add(float64(latency)) }

// N returns the number of observations.
func (c *LatencyCollector) N() int { return c.sample.N() }

// Mean returns the mean latency.
func (c *LatencyCollector) Mean() float64 { return c.sample.Mean() }

// P returns the p-th percentile latency.
func (c *LatencyCollector) P(p float64) float64 { return c.sample.Percentile(p) }

// Max returns the largest observed latency.
func (c *LatencyCollector) Max() float64 { return c.sample.Max() }
