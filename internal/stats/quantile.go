package stats

import (
	"encoding/json"
	"math"
	"sort"
)

// Quantile tuning. 32 sub-buckets per octave bound the relative width
// of one bucket to 1/32 ≈ 3.1%, so a nearest-rank quantile read from
// bucket midpoints is within ~1.6% (relative) of the exact value —
// plenty for p50/p99/p999 recovery-latency SLOs measured in cycles.
const (
	quantileExactCap = 128
	quantileSubBits  = 5
	quantileSub      = 1 << quantileSubBits
)

// Quantile is a streaming quantile estimator for non-negative values
// (cycle counts, latencies) with bounded memory, built for the
// continuous-churn harness where a run observes millions of packet
// latencies: Sample keeps every value and would grow without bound.
//
// Small streams (≤ quantileExactCap values) are stored exactly, so
// short runs report exact percentiles. Larger streams spill into a
// log-bucketed histogram: each power-of-two octave is split into
// quantileSub equal sub-buckets, giving ≤ 1/quantileSub relative error
// per bucket at a few KB regardless of stream length. Values in [0, 1)
// get a dedicated bin (latencies are integers; only an exact zero lands
// there in practice).
//
// Merge combines two estimators; because bucket boundaries are global
// constants, merging per-shard sketches is bucket-exact — a merged
// sketch answers every quantile query identically to a single sketch
// that saw the concatenated stream (once either side has spilled).
//
// The zero value is ready to use. Quantile serializes to JSON (the
// sweep cache stores experiment cells as JSON), round-tripping every
// query answer exactly.
type Quantile struct {
	n     int64
	sum   float64
	minV  float64
	maxV  float64
	exact []float64 // exact mode; nil once spilled
	spill bool
	small int64   // count of values in [0, 1)
	buck  []int64 // bucket counts, index = octave*quantileSub + sub
}

// Add records one observation. Negative values clamp to 0 (latencies
// cannot be negative; a clamp keeps a buggy caller observable via Min
// rather than corrupting the bucket index).
func (q *Quantile) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	if math.IsInf(v, 1) {
		v = math.MaxFloat64
	}
	if q.n == 0 || v < q.minV {
		q.minV = v
	}
	if q.n == 0 || v > q.maxV {
		q.maxV = v
	}
	q.n++
	q.sum += v
	if !q.spill {
		if len(q.exact) < quantileExactCap {
			q.exact = append(q.exact, v)
			return
		}
		q.spillExact()
	}
	q.bucketAdd(v)
}

// spillExact converts the exact store into buckets.
func (q *Quantile) spillExact() {
	q.spill = true
	for _, v := range q.exact {
		q.bucketAdd(v)
	}
	q.exact = nil
}

func (q *Quantile) bucketAdd(v float64) {
	if v < 1 {
		q.small++
		return
	}
	idx := bucketIndex(v)
	if idx >= len(q.buck) {
		q.buck = append(q.buck, make([]int64, idx+1-len(q.buck))...)
	}
	q.buck[idx]++
}

// bucketIndex maps v ≥ 1 to its bucket: octave = floor(log2 v), sub =
// the value's position within the octave in quantileSub equal slices.
func bucketIndex(v float64) int {
	frac, exp := math.Frexp(v) // v = frac × 2^exp, frac ∈ [0.5, 1)
	octave := exp - 1          // v ∈ [2^octave, 2^(octave+1))
	sub := int(frac*(2*quantileSub)) - quantileSub
	if sub >= quantileSub { // frac rounding at the octave edge
		sub = quantileSub - 1
	}
	return octave*quantileSub + sub
}

// bucketMid returns the representative value of bucket idx: the
// midpoint of its [lo, hi) span.
func bucketMid(idx int) float64 {
	octave := idx >> quantileSubBits
	sub := idx & (quantileSub - 1)
	lo := math.Ldexp(1+float64(sub)/quantileSub, octave)
	hi := math.Ldexp(1+float64(sub+1)/quantileSub, octave)
	return (lo + hi) / 2
}

// N returns the observation count.
func (q *Quantile) N() int64 { return q.n }

// Mean returns the arithmetic mean (0 for an empty stream).
func (q *Quantile) Mean() float64 {
	if q.n == 0 {
		return 0
	}
	return q.sum / float64(q.n)
}

// Min and Max return the exact extremes (0 for an empty stream).
func (q *Quantile) Min() float64 { return q.minV }

// Max returns the largest observation.
func (q *Quantile) Max() float64 { return q.maxV }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by nearest-rank,
// matching Sample.Percentile's convention. Exact below the spill
// threshold; within one bucket's width above it. The extremes are
// pinned: p low enough to select the first value returns Min, high
// enough to select the last returns Max.
func (q *Quantile) Percentile(p float64) float64 {
	if q.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(p/100*float64(q.n))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= q.n {
		rank = q.n - 1
	}
	if !q.spill {
		sorted := append([]float64(nil), q.exact...)
		sort.Float64s(sorted)
		return sorted[rank]
	}
	if rank == q.n-1 {
		return q.maxV
	}
	seen := q.small
	if rank < seen {
		return q.minV // everything in [0,1) reads as the exact minimum
	}
	for idx, cnt := range q.buck {
		seen += cnt
		if rank < seen {
			return bucketMid(idx)
		}
	}
	return q.maxV
}

// Merge folds o into q, as if q had also observed o's stream. Bucket
// boundaries are shared constants, so merged sketches answer quantile
// queries exactly like a single sketch over the concatenated stream
// (shard-order independent); if both sides are still exact and fit,
// the merge stays exact.
func (q *Quantile) Merge(o *Quantile) {
	if o.n == 0 {
		return
	}
	if q.n == 0 || o.minV < q.minV {
		q.minV = o.minV
	}
	if q.n == 0 || o.maxV > q.maxV {
		q.maxV = o.maxV
	}
	q.n += o.n
	q.sum += o.sum
	if !q.spill && !o.spill && len(q.exact)+len(o.exact) <= quantileExactCap {
		q.exact = append(q.exact, o.exact...)
		return
	}
	if !q.spill {
		q.spillExact()
	}
	if !o.spill {
		for _, v := range o.exact {
			q.bucketAdd(v)
		}
		return
	}
	q.small += o.small
	if len(o.buck) > len(q.buck) {
		q.buck = append(q.buck, make([]int64, len(o.buck)-len(q.buck))...)
	}
	for i, cnt := range o.buck {
		q.buck[i] += cnt
	}
}

// quantileJSON is the serialized form (the sweep cache stores cells as
// JSON; unexported fields would silently drop).
type quantileJSON struct {
	N     int64     `json:"n"`
	Sum   float64   `json:"sum"`
	Min   float64   `json:"min"`
	Max   float64   `json:"max"`
	Exact []float64 `json:"exact,omitempty"`
	Spill bool      `json:"spill,omitempty"`
	Small int64     `json:"small,omitempty"`
	Buck  []int64   `json:"buck,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (q *Quantile) MarshalJSON() ([]byte, error) {
	return json.Marshal(quantileJSON{
		N: q.n, Sum: q.sum, Min: q.minV, Max: q.maxV,
		Exact: q.exact, Spill: q.spill, Small: q.small, Buck: q.buck,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (q *Quantile) UnmarshalJSON(b []byte) error {
	var s quantileJSON
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	q.n, q.sum, q.minV, q.maxV = s.N, s.Sum, s.Min, s.Max
	q.exact, q.spill, q.small, q.buck = s.Exact, s.Spill, s.Small, s.Buck
	return nil
}
