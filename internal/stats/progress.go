package stats

import (
	"fmt"
	"sync"
	"time"
)

// Progress tracks completion of a growing population of jobs with
// wall-clock timing, for long sweeps that want live status and an ETA.
// It is safe for concurrent use by a worker pool.
type Progress struct {
	mu       sync.Mutex
	start    time.Time
	total    int
	done     int
	cached   int
	failed   int
	jobTimes Sample // executed-job wall times, in seconds
}

// NewProgress starts the clock.
func NewProgress() *Progress { return &Progress{start: time.Now()} }

// Grow announces n more scheduled jobs.
func (p *Progress) Grow(n int) {
	p.mu.Lock()
	p.total += n
	p.mu.Unlock()
}

// ObserveExecuted records one executed job's wall time and outcome.
func (p *Progress) ObserveExecuted(d time.Duration, ok bool) {
	p.mu.Lock()
	p.done++
	if !ok {
		p.failed++
	}
	p.jobTimes.Add(d.Seconds())
	p.mu.Unlock()
}

// ObserveCached records one job satisfied from a result cache.
func (p *Progress) ObserveCached() {
	p.mu.Lock()
	p.done++
	p.cached++
	p.mu.Unlock()
}

// ProgressSnapshot is a point-in-time view of a Progress tracker.
type ProgressSnapshot struct {
	Total, Done, Cached, Failed int
	// Elapsed is wall time since the tracker was created.
	Elapsed time.Duration
	// MeanJob and P95Job summarize executed-job wall times.
	MeanJob, P95Job time.Duration
	// Rate is completed jobs (executed or cached) per second of elapsed
	// wall time.
	Rate float64
	// ETA estimates the remaining wall time at the current rate
	// (0 when nothing has completed yet).
	ETA time.Duration
}

// Snapshot returns the current cumulative view.
func (p *Progress) Snapshot() ProgressSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := ProgressSnapshot{
		Total:   p.total,
		Done:    p.done,
		Cached:  p.cached,
		Failed:  p.failed,
		Elapsed: time.Since(p.start),
		MeanJob: time.Duration(p.jobTimes.Mean() * float64(time.Second)),
		P95Job:  time.Duration(p.jobTimes.Percentile(95) * float64(time.Second)),
	}
	if sec := s.Elapsed.Seconds(); sec > 0 && s.Done > 0 {
		s.Rate = float64(s.Done) / sec
		if rem := s.Total - s.Done; rem > 0 {
			s.ETA = time.Duration(float64(rem) / s.Rate * float64(time.Second))
		}
	}
	return s
}

// String renders one status line, e.g.
// "sweep 37/120 (31%) 12 cached 0 failed | 8.4 jobs/s, mean 112ms | ETA 9s".
func (s ProgressSnapshot) String() string {
	pct := 0.0
	if s.Total > 0 {
		pct = 100 * float64(s.Done) / float64(s.Total)
	}
	return fmt.Sprintf("sweep %d/%d (%.0f%%) %d cached %d failed | %.1f jobs/s, mean %s | ETA %s",
		s.Done, s.Total, pct, s.Cached, s.Failed,
		s.Rate, s.MeanJob.Round(time.Millisecond), s.ETA.Round(time.Second))
}
