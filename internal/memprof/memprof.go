// Package memprof is the allocation-observability harness: thin wrappers
// over runtime.MemStats and runtime/pprof that let the benchmark driver
// and the CLIs measure steady-state allocation rates and capture
// profiles without each call site repeating the boilerplate.
//
// The central measurement is a Snapshot pair around a work window:
// Mallocs and TotalAlloc are monotonic lifetime counters, so the delta
// is exact regardless of when (or whether) the garbage collector runs in
// between. This is what BENCH_sim.json's allocs-per-cycle columns and
// the zero-alloc CI gate are built on.
package memprof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Snapshot is a point-in-time reading of the allocation counters.
type Snapshot struct {
	// Mallocs is the cumulative count of heap objects allocated.
	Mallocs uint64
	// TotalAlloc is the cumulative bytes allocated for heap objects.
	TotalAlloc uint64
}

// Take reads the runtime counters. ReadMemStats stops the world briefly,
// so callers should sample outside any timed region.
func Take() Snapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return Snapshot{Mallocs: ms.Mallocs, TotalAlloc: ms.TotalAlloc}
}

// Delta is the allocation activity between two snapshots.
type Delta struct {
	// Allocs is the number of heap objects allocated in the window.
	Allocs uint64
	// Bytes is the heap bytes allocated in the window.
	Bytes uint64
}

// Since returns the activity from earlier to s. Counters are monotonic;
// passing snapshots in the wrong order underflows, so don't.
func (s Snapshot) Since(earlier Snapshot) Delta {
	return Delta{Allocs: s.Mallocs - earlier.Mallocs, Bytes: s.TotalAlloc - earlier.TotalAlloc}
}

// StartCPUProfile begins a CPU profile written to path and returns the
// function that stops the profile and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile collects garbage (so the profile reflects live
// objects, not floating garbage) and writes the heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
