package memprof

import (
	"os"
	"path/filepath"
	"testing"
)

// sink forces the test allocation to escape to the heap.
var sink []byte

func TestSnapshotDelta(t *testing.T) {
	base := Take()
	sink = make([]byte, 1<<16)
	d := Take().Since(base)
	if d.Allocs == 0 {
		t.Fatal("allocation between snapshots not observed")
	}
	if d.Bytes < 1<<16 {
		t.Fatalf("delta bytes = %d, want >= %d", d.Bytes, 1<<16)
	}
	s := Take()
	if z := s.Since(s); z.Allocs != 0 || z.Bytes != 0 {
		t.Fatalf("self delta = %+v, want zero", z)
	}
}

func TestProfileWriters(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	stop, err := StartCPUProfile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu profile not written: %v", err)
	}
	// A second profile while one is active must fail cleanly.
	stop2, err := StartCPUProfile(filepath.Join(dir, "cpu2.pprof"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StartCPUProfile(filepath.Join(dir, "cpu3.pprof")); err == nil {
		t.Error("nested StartCPUProfile did not fail")
	}
	if err := stop2(); err != nil {
		t.Fatal(err)
	}

	heap := filepath.Join(dir, "mem.pprof")
	if err := WriteHeapProfile(heap); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(heap); err != nil || fi.Size() == 0 {
		t.Fatalf("heap profile not written: %v", err)
	}
	if err := WriteHeapProfile(filepath.Join(dir, "no", "such", "dir.pprof")); err == nil {
		t.Error("WriteHeapProfile to a missing directory did not fail")
	}
	if _, err := StartCPUProfile(filepath.Join(dir, "no", "such", "cpu.pprof")); err == nil {
		t.Error("StartCPUProfile to a missing directory did not fail")
	}
}
