// Package geom provides the coordinate, direction, and turn algebra used
// throughout the Static Bubble NoC simulator.
//
// The mesh lives in a right-handed grid: x grows East, y grows North.
// A router port is named after the direction it faces, so a flit moving
// North out of router A arrives on the South input port of the router
// above A. The turn taken at a router is expressed relative to the flit's
// heading, matching the 2-bit L/R/S encoding that probes carry in the
// paper (Section IV-A).
package geom

import "fmt"

// Direction identifies a router port or a heading on the mesh.
type Direction int8

// The five router ports. Local is the NI injection/ejection port; it is
// never a heading.
const (
	North Direction = iota
	East
	South
	West
	Local
	// Invalid marks "no direction"; the zero value is deliberately a real
	// direction (North) so Direction can index arrays, and Invalid is used
	// explicitly where absence matters.
	Invalid
)

// NumPorts is the number of physical ports on a mesh router (N, E, S, W,
// Local).
const NumPorts = 5

// NumLinkDirs is the number of inter-router link directions (excludes
// Local).
const NumLinkDirs = 4

// LinkDirs lists the four inter-router directions in a fixed order.
var LinkDirs = [NumLinkDirs]Direction{North, East, South, West}

// AllPorts lists every router port including Local.
var AllPorts = [NumPorts]Direction{North, East, South, West, Local}

func (d Direction) String() string {
	switch d {
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	case Local:
		return "L"
	case Invalid:
		return "?"
	}
	return fmt.Sprintf("Direction(%d)", int8(d))
}

// IsLink reports whether d is one of the four inter-router directions.
func (d Direction) IsLink() bool {
	return d == North || d == East || d == South || d == West
}

// Opposite returns the direction pointing the other way. Opposite(Local)
// is Local; Opposite(Invalid) is Invalid.
func (d Direction) Opposite() Direction {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	}
	return d
}

// Left returns the direction 90° counterclockwise from d (North→West).
// Only valid for link directions.
func (d Direction) Left() Direction {
	switch d {
	case North:
		return West
	case West:
		return South
	case South:
		return East
	case East:
		return North
	}
	return Invalid
}

// Right returns the direction 90° clockwise from d (North→East).
// Only valid for link directions.
func (d Direction) Right() Direction {
	switch d {
	case North:
		return East
	case East:
		return South
	case South:
		return West
	case West:
		return North
	}
	return Invalid
}

// Delta returns the unit (dx, dy) step of heading d. Local and Invalid
// return (0, 0).
func (d Direction) Delta() (dx, dy int) {
	switch d {
	case North:
		return 0, 1
	case East:
		return 1, 0
	case South:
		return 0, -1
	case West:
		return -1, 0
	}
	return 0, 0
}

// DirectionBetween returns the link direction from coordinate a to an
// adjacent coordinate b, or Invalid if they are not mesh neighbors.
func DirectionBetween(a, b Coord) Direction {
	dx, dy := b.X-a.X, b.Y-a.Y
	switch {
	case dx == 0 && dy == 1:
		return North
	case dx == 1 && dy == 0:
		return East
	case dx == 0 && dy == -1:
		return South
	case dx == -1 && dy == 0:
		return West
	}
	return Invalid
}

// Turn is the relative direction change a message takes at a router,
// encoded in 2 bits in probe/disable/enable/check_probe payloads.
type Turn int8

// The three legal turns. U-turns (180°) are forbidden by the router
// design (paper Section III, footnote 2), so they have no encoding; a
// TurnBetween on opposite headings reports ok=false.
const (
	Straight Turn = iota
	LeftTurn
	RightTurn
)

func (t Turn) String() string {
	switch t {
	case Straight:
		return "S"
	case LeftTurn:
		return "L"
	case RightTurn:
		return "R"
	}
	return fmt.Sprintf("Turn(%d)", int8(t))
}

// TurnBetween computes the turn that changes heading from to heading to.
// ok is false for U-turns or non-link directions.
func TurnBetween(from, to Direction) (t Turn, ok bool) {
	if !from.IsLink() || !to.IsLink() {
		return Straight, false
	}
	switch to {
	case from:
		return Straight, true
	case from.Left():
		return LeftTurn, true
	case from.Right():
		return RightTurn, true
	}
	return Straight, false // U-turn
}

// Apply returns the new heading after taking turn t while heading d.
// Only valid for link directions.
func (t Turn) Apply(d Direction) Direction {
	if !d.IsLink() {
		return Invalid
	}
	switch t {
	case Straight:
		return d
	case LeftTurn:
		return d.Left()
	case RightTurn:
		return d.Right()
	}
	return Invalid
}

// Coord is a router position on the mesh.
type Coord struct {
	X, Y int
}

func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Add returns the coordinate one step in direction d.
func (c Coord) Add(d Direction) Coord {
	dx, dy := d.Delta()
	return Coord{c.X + dx, c.Y + dy}
}

// ManhattanDistance returns |dx| + |dy| between two coordinates.
func ManhattanDistance(a, b Coord) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// NodeID is the flat identifier of a router in an n×m mesh:
// id = y*width + x. NodeIDs double as the tie-breaking priority used by
// the recovery protocol (higher id wins).
type NodeID int

// InvalidNode marks "no router".
const InvalidNode NodeID = -1

// CoordOf converts a NodeID back to its coordinate for a mesh of the
// given width.
func (n NodeID) CoordOf(width int) Coord {
	return Coord{int(n) % width, int(n) / width}
}

// IDOf converts a coordinate to a NodeID for a mesh of the given width.
func (c Coord) IDOf(width int) NodeID {
	return NodeID(c.Y*width + c.X)
}
