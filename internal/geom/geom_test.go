package geom

import (
	"testing"
	"testing/quick"
)

func TestOpposite(t *testing.T) {
	cases := map[Direction]Direction{
		North: South, South: North, East: West, West: East,
		Local: Local, Invalid: Invalid,
	}
	for d, want := range cases {
		if got := d.Opposite(); got != want {
			t.Errorf("Opposite(%v) = %v, want %v", d, got, want)
		}
	}
}

func TestOppositeInvolution(t *testing.T) {
	for _, d := range AllPorts {
		if d.Opposite().Opposite() != d {
			t.Errorf("Opposite not an involution for %v", d)
		}
	}
}

func TestLeftRightInverse(t *testing.T) {
	for _, d := range LinkDirs {
		if d.Left().Right() != d {
			t.Errorf("Left then Right of %v != %v", d, d)
		}
		if d.Right().Left() != d {
			t.Errorf("Right then Left of %v != %v", d, d)
		}
	}
}

func TestLeftFourTimesIsIdentity(t *testing.T) {
	for _, d := range LinkDirs {
		if d.Left().Left().Left().Left() != d {
			t.Errorf("four lefts of %v is not identity", d)
		}
		if d.Left().Left() != d.Opposite() {
			t.Errorf("two lefts of %v is not opposite", d)
		}
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	origin := Coord{3, 3}
	for _, d := range LinkDirs {
		n := origin.Add(d)
		if got := DirectionBetween(origin, n); got != d {
			t.Errorf("DirectionBetween(%v, %v) = %v, want %v", origin, n, got, d)
		}
		if got := DirectionBetween(n, origin); got != d.Opposite() {
			t.Errorf("reverse DirectionBetween = %v, want %v", got, d.Opposite())
		}
	}
}

func TestDirectionBetweenNonNeighbors(t *testing.T) {
	a := Coord{0, 0}
	for _, b := range []Coord{{0, 0}, {2, 0}, {1, 1}, {-1, -1}, {0, 3}} {
		if got := DirectionBetween(a, b); got != Invalid {
			t.Errorf("DirectionBetween(%v, %v) = %v, want Invalid", a, b, got)
		}
	}
}

func TestTurnBetweenExhaustive(t *testing.T) {
	for _, from := range LinkDirs {
		for _, to := range LinkDirs {
			turn, ok := TurnBetween(from, to)
			if to == from.Opposite() {
				if ok {
					t.Errorf("TurnBetween(%v, %v): U-turn must not be ok", from, to)
				}
				continue
			}
			if !ok {
				t.Errorf("TurnBetween(%v, %v): want ok", from, to)
				continue
			}
			if got := turn.Apply(from); got != to {
				t.Errorf("Apply(TurnBetween(%v,%v)=%v) = %v, want %v", from, to, turn, got, to)
			}
		}
	}
}

func TestTurnBetweenRejectsNonLink(t *testing.T) {
	if _, ok := TurnBetween(Local, North); ok {
		t.Error("TurnBetween(Local, North) should not be ok")
	}
	if _, ok := TurnBetween(North, Local); ok {
		t.Error("TurnBetween(North, Local) should not be ok")
	}
	if _, ok := TurnBetween(Invalid, Invalid); ok {
		t.Error("TurnBetween(Invalid, Invalid) should not be ok")
	}
}

func TestTurnApplyNonLink(t *testing.T) {
	for _, turn := range []Turn{Straight, LeftTurn, RightTurn} {
		if got := turn.Apply(Local); got != Invalid {
			t.Errorf("%v.Apply(Local) = %v, want Invalid", turn, got)
		}
	}
}

func TestTurnStrings(t *testing.T) {
	if Straight.String() != "S" || LeftTurn.String() != "L" || RightTurn.String() != "R" {
		t.Error("unexpected turn strings")
	}
	if Turn(9).String() != "Turn(9)" {
		t.Errorf("fallback turn string = %q", Turn(9).String())
	}
}

func TestDirectionStrings(t *testing.T) {
	want := map[Direction]string{North: "N", East: "E", South: "S", West: "W", Local: "L", Invalid: "?"}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("%d.String() = %q, want %q", int8(d), d.String(), s)
		}
	}
	if Direction(9).String() != "Direction(9)" {
		t.Errorf("fallback direction string = %q", Direction(9).String())
	}
}

func TestIsLink(t *testing.T) {
	for _, d := range LinkDirs {
		if !d.IsLink() {
			t.Errorf("%v should be a link direction", d)
		}
	}
	if Local.IsLink() || Invalid.IsLink() {
		t.Error("Local/Invalid should not be link directions")
	}
}

func TestNodeIDRoundTrip(t *testing.T) {
	widths := []int{1, 2, 5, 8, 16}
	for _, w := range widths {
		for y := 0; y < 4; y++ {
			for x := 0; x < w; x++ {
				c := Coord{x, y}
				if got := c.IDOf(w).CoordOf(w); got != c {
					t.Fatalf("width %d: round trip of %v gave %v", w, c, got)
				}
			}
		}
	}
}

func TestNodeIDRoundTripProperty(t *testing.T) {
	f := func(x, y uint8, w uint8) bool {
		width := int(w%62) + 2
		c := Coord{int(x) % width, int(y)}
		return c.IDOf(width).CoordOf(width) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestManhattanDistance(t *testing.T) {
	cases := []struct {
		a, b Coord
		want int
	}{
		{Coord{0, 0}, Coord{0, 0}, 0},
		{Coord{0, 0}, Coord{3, 4}, 7},
		{Coord{5, 2}, Coord{1, 7}, 9},
		{Coord{2, 2}, Coord{2, 3}, 1},
	}
	for _, c := range cases {
		if got := ManhattanDistance(c.a, c.b); got != c.want {
			t.Errorf("ManhattanDistance(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := ManhattanDistance(c.b, c.a); got != c.want {
			t.Errorf("distance not symmetric for %v, %v", c.a, c.b)
		}
	}
}

// A heading sequence constrained to the three legal turns can only close a
// loop after at least four left or four right turns net; verify the turn
// algebra preserves that planarity invariant on random walks.
func TestTurnWalkHeadingConsistency(t *testing.T) {
	f := func(turns []uint8) bool {
		h := North
		net := 0
		for _, raw := range turns {
			turn := Turn(raw % 3)
			h2 := turn.Apply(h)
			if !h2.IsLink() {
				return false
			}
			switch turn {
			case LeftTurn:
				net++
			case RightTurn:
				net--
			}
			h = h2
		}
		// Heading is determined by net turn count mod 4.
		want := North
		for i := 0; i < ((net%4)+4)%4; i++ {
			want = want.Left()
		}
		return h == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
