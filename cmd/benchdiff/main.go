// Command benchdiff compares two BENCH_sim.json files (sbsweep -fig
// bench output) and fails when a gated scenario's event core got more
// than -threshold slower. CI runs it with the old file downloaded from
// the main branch's most recent bench artifact, so a PR cannot silently
// regress steady-state simulation throughput.
//
// Per scenario it compares the minimum event ns/cycle across shard
// counts (the minimum damps scheduler and machine noise far better than
// any single row). Scenarios present on only one side are reported but
// never fail the gate — adding or retiring a scenario is not a
// regression.
//
// Usage:
//
//	benchdiff old.json new.json
//	benchdiff -threshold 0.10 -all old.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/experiments"
)

func main() {
	threshold := flag.Float64("threshold", 0.10, "maximum allowed fractional slowdown of event ns/cycle in gated scenarios")
	gateAll := flag.Bool("all", false, "gate every scenario, not just the default gated set")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.10] [-all] OLD.json NEW.json")
		os.Exit(2)
	}
	oldRows, err := readBench(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newRows, err := readBench(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	oldNs, newNs := minByScenario(oldRows), minByScenario(newRows)
	names := make([]string, 0, len(newNs))
	for name := range newNs {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("%-30s %14s %14s %8s %6s\n", "scenario", "old ns/cyc", "new ns/cyc", "delta", "gated")
	failed := false
	for _, name := range names {
		old, ok := oldNs[name]
		if !ok {
			fmt.Printf("%-30s %14s %14.0f %8s %6s\n", name, "-", newNs[name], "new", "-")
			continue
		}
		delta := newNs[name]/old - 1
		gated := *gateAll || gatedScenarios[name]
		mark := "no"
		if gated {
			mark = "yes"
		}
		verdict := ""
		if gated && delta > *threshold {
			verdict = "  REGRESSION"
			failed = true
		}
		fmt.Printf("%-30s %14.0f %14.0f %+7.1f%% %6s%s\n", name, old, newNs[name], delta*100, mark, verdict)
	}
	for name := range oldNs {
		if _, ok := newNs[name]; !ok {
			fmt.Printf("%-30s %14.0f %14s %8s %6s\n", name, oldNs[name], "-", "gone", "-")
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: event core slower by more than %.0f%% in a gated scenario\n", *threshold*100)
		os.Exit(1)
	}
}

// gatedScenarios are the scenarios whose throughput the gate protects:
// the steady-state regimes whose timing is reproducible enough for a
// threshold comparison. The past-saturation and recovery-storm scenarios
// are reported but ungated (their queues grow unboundedly, so their
// timings swing with allocator behavior).
var gatedScenarios = map[string]bool{
	"idle_mesh_16x16":            true,
	"saturation_steady_8x8":      true,
	"route_heavy_adaptive_16x16": true,
}

// minByScenario reduces rows to each scenario's fastest event time
// across shard counts.
func minByScenario(rows []experiments.SimBenchResult) map[string]float64 {
	min := make(map[string]float64)
	for _, r := range rows {
		if cur, ok := min[r.Scenario]; !ok || r.EventNsPerCycle < cur {
			min[r.Scenario] = r.EventNsPerCycle
		}
	}
	return min
}

func readBench(path string) ([]experiments.SimBenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []experiments.SimBenchResult
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%s: no benchmark rows", path)
	}
	return rows, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
