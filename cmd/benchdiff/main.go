// Command benchdiff compares two BENCH_sim.json files (sbsweep -fig
// bench output) and fails when a gated scenario's event core got more
// than -threshold slower. CI runs it with the old file downloaded from
// the main branch's most recent bench artifact, so a PR cannot silently
// regress steady-state simulation throughput.
//
// Two gates run:
//
//   - Cross-file: per scenario, the minimum event ns/cycle across shard
//     counts (the minimum damps scheduler and machine noise far better
//     than any single row) must not rise by more than -threshold. The
//     per-(scenario, shards) rows are reported alongside so a regression
//     confined to one shard count is visible even when the min hides it.
//
//   - Intra-file scaling: within the NEW file alone, the sharded stepper
//     must not scale backwards — shards=4 must stay within a per-scenario
//     limit of shards=1 (see scalingGates). Rows benched without enough
//     OS parallelism (GoMaxProcs below the shard count) are skipped, not
//     failed: on a 1-CPU runner a sharded row can only measure overhead,
//     and gating it would reject every PR the runner ever sees.
//
// Scenarios present on only one side are reported but never fail the
// gate — adding or retiring a scenario is not a regression.
//
// Usage:
//
//	benchdiff old.json new.json
//	benchdiff -threshold 0.10 -all old.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/experiments"
)

func main() {
	threshold := flag.Float64("threshold", 0.10, "maximum allowed fractional slowdown of event ns/cycle in gated scenarios")
	gateAll := flag.Bool("all", false, "gate every scenario, not just the default gated set")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.10] [-all] OLD.json NEW.json")
		os.Exit(2)
	}
	oldRows, err := readBench(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newRows, err := readBench(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	failed := diffScenarios(oldRows, newRows, *threshold, *gateAll)
	if checkScaling(newRows) {
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// gatedScenarios are the scenarios whose throughput the cross-file gate
// protects: the steady-state regimes whose timing is reproducible enough
// for a threshold comparison. That includes the sharded 32x32 saturation
// scenario — the workload the sharded stepper exists for. The
// past-saturation 8x8 and recovery-storm scenarios are reported but
// ungated (their queues grow unboundedly, so their timings swing with
// allocator behavior).
var gatedScenarios = map[string]bool{
	"idle_mesh_16x16":            true,
	"saturation_steady_8x8":      true,
	"saturation_steady_32x32":    true,
	"route_heavy_adaptive_16x16": true,
	"churn_16x16":                true,
	// churn_32x32 is the scale where per-event table work shows up in
	// the hot loop; compile_64x64 gates the incremental recompiler's
	// ns/epoch directly (its "event" core is the incremental compile,
	// its "refmodel" the from-scratch parallel compile).
	"churn_32x32":   true,
	"compile_64x64": true,
	// The 16x16 steady-saturation mesh is the dense stepper's gated
	// regime at a size where neither the sparse wheel nor the dense
	// sweep is trivially dominant; regressing it means the density
	// heuristic or the fused arbitration pass lost its edge.
	"saturation_steady_16x16": true,
}

// scalingGates bound, within a single bench file, how shards=4 may
// compare against shards=1 (ns4 <= limit * ns1). The idle mesh is pure
// synchronization overhead — quiet batching should make sharding close
// to free. The 32x32 saturation mesh is the parallel payoff case: with
// real cores underneath, 4 shards must come out meaningfully ahead, and
// a limit below 1 means "backwards scaling fails the gate" rather than
// merely "regression versus last week". Both checks are skipped when
// the row was measured with GoMaxProcs < 4.
var scalingGates = []struct {
	scenario string
	limit    float64
}{
	{"idle_mesh_16x16", 1.10},
	{"saturation_steady_32x32", 0.80},
}

// key identifies one bench row. GoMaxProcs is part of the identity
// because the harness emits both a single-proc row (pure algorithmic
// cost) and a best-parallelism row for sharded scenarios; comparing a
// single-proc old row against a multi-proc new row would manufacture
// phantom speedups.
type key struct {
	scenario   string
	shards     int
	gomaxprocs int
}

// diffScenarios prints the per-(scenario, shards) comparison plus the
// min-across-shards verdict per scenario, and reports whether any gated
// scenario regressed past the threshold.
func diffScenarios(oldRows, newRows []experiments.SimBenchResult, threshold float64, gateAll bool) bool {
	oldBy, newBy := byKey(oldRows), byKey(newRows)
	oldNs, newNs := minByScenario(oldRows), minByScenario(newRows)
	names := make([]string, 0, len(newNs))
	for name := range newNs {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("%-30s %7s %14s %14s %8s %6s\n", "scenario", "sh x p", "old ns/cyc", "new ns/cyc", "delta", "gated")
	failed := false
	for _, name := range names {
		// Per-(shards, procs) detail rows: informational, so a slowdown
		// confined to one configuration is visible even when the
		// min-based gate passes.
		rowKeys := make([]key, 0, 8)
		for k := range newBy {
			if k.scenario == name {
				rowKeys = append(rowKeys, k)
			}
		}
		sort.Slice(rowKeys, func(i, j int) bool {
			if rowKeys[i].shards != rowKeys[j].shards {
				return rowKeys[i].shards < rowKeys[j].shards
			}
			return rowKeys[i].gomaxprocs < rowKeys[j].gomaxprocs
		})
		for _, k := range rowKeys {
			nr := newBy[k]
			label := fmt.Sprintf("%dx%d", k.shards, k.gomaxprocs)
			if or, ok := oldBy[k]; ok {
				d := nr.EventNsPerCycle/or.EventNsPerCycle - 1
				fmt.Printf("%-30s %7s %14.0f %14.0f %+7.1f%% %6s\n", name, label, or.EventNsPerCycle, nr.EventNsPerCycle, d*100, "")
			} else {
				fmt.Printf("%-30s %7s %14s %14.0f %8s %6s\n", name, label, "-", nr.EventNsPerCycle, "new", "")
			}
		}
		// Scenario verdict row: min across shard counts.
		old, ok := oldNs[name]
		if !ok {
			fmt.Printf("%-30s %7s %14s %14.0f %8s %6s\n", name, "min", "-", newNs[name], "new", "-")
			continue
		}
		delta := newNs[name]/old - 1
		gated := gateAll || gatedScenarios[name]
		mark := "no"
		if gated {
			mark = "yes"
		}
		verdict := ""
		if gated && delta > threshold {
			verdict = "  REGRESSION"
			failed = true
		}
		fmt.Printf("%-30s %7s %14.0f %14.0f %+7.1f%% %6s%s\n", name, "min", old, newNs[name], delta*100, mark, verdict)
	}
	for name := range oldNs {
		if _, ok := newNs[name]; !ok {
			fmt.Printf("%-30s %7s %14.0f %14s %8s %6s\n", name, "min", oldNs[name], "-", "gone", "-")
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: event core slower by more than %.0f%% in a gated scenario\n", threshold*100)
	}
	return failed
}

// checkScaling applies scalingGates to the new file and reports whether
// any scenario scaled backwards past its limit.
func checkScaling(newRows []experiments.SimBenchResult) bool {
	failed := false
	for _, g := range scalingGates {
		// Compare the fastest row at each shard count: shards=1 has only
		// the single-proc row, while shards=4 is benched both single-proc
		// (overhead measurement) and at full parallelism — the latter is
		// what the scaling contract is about.
		r1, ok1 := bestRow(newRows, g.scenario, 1)
		r4, ok4 := bestRow(newRows, g.scenario, 4)
		if !ok1 || !ok4 {
			fmt.Printf("scaling %-30s skipped: missing shards=1 or shards=4 row\n", g.scenario)
			continue
		}
		if r4.GoMaxProcs < 4 {
			fmt.Printf("scaling %-30s skipped: benched at GOMAXPROCS=%d (<4), sharded rows measure only overhead\n",
				g.scenario, r4.GoMaxProcs)
			continue
		}
		ratio := r4.EventNsPerCycle / r1.EventNsPerCycle
		verdict := "ok"
		if ratio > g.limit {
			verdict = "BACKWARDS SCALING"
			failed = true
		}
		fmt.Printf("scaling %-30s shards4/shards1 = %.2f (limit %.2f)  %s\n", g.scenario, ratio, g.limit, verdict)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchdiff: sharded stepper scales backwards in a gated scenario")
	}
	return failed
}

func byKey(rows []experiments.SimBenchResult) map[key]experiments.SimBenchResult {
	m := make(map[key]experiments.SimBenchResult, len(rows))
	for _, r := range rows {
		m[key{r.Scenario, r.Shards, r.GoMaxProcs}] = r
	}
	return m
}

// bestRow returns the fastest row for (scenario, shards), preferring
// higher GoMaxProcs on a tie so the scaling gate's GoMaxProcs skip
// check sees the most parallel measurement available.
func bestRow(rows []experiments.SimBenchResult, scenario string, shards int) (experiments.SimBenchResult, bool) {
	var best experiments.SimBenchResult
	found := false
	for _, r := range rows {
		if r.Scenario != scenario || r.Shards != shards {
			continue
		}
		if !found || r.EventNsPerCycle < best.EventNsPerCycle ||
			(r.EventNsPerCycle == best.EventNsPerCycle && r.GoMaxProcs > best.GoMaxProcs) {
			best = r
			found = true
		}
	}
	return best, found
}

// minByScenario reduces rows to each scenario's fastest event time
// across shard counts.
func minByScenario(rows []experiments.SimBenchResult) map[string]float64 {
	min := make(map[string]float64)
	for _, r := range rows {
		if cur, ok := min[r.Scenario]; !ok || r.EventNsPerCycle < cur {
			min[r.Scenario] = r.EventNsPerCycle
		}
	}
	return min
}

func readBench(path string) ([]experiments.SimBenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []experiments.SimBenchResult
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%s: no benchmark rows", path)
	}
	return rows, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
