// Command sbsweep regenerates the paper's evaluation tables and figures
// (Section V). Each -fig selects one experiment; -scale quick runs a
// reduced sweep for a fast smoke pass, -scale full approaches the paper's
// sampling.
//
// Usage:
//
//	sbsweep -fig 2          # deadlock-prone topology fraction
//	sbsweep -fig 3          # deadlock-onset heat map
//	sbsweep -fig t1         # Table I buffer counts
//	sbsweep -fig 8|9|10|11|12|13
//	sbsweep -fig all -scale quick
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "experiment: 2, 3, t1, 8, 9, 10, 11, 12, 13, scale, failures, ablation, or all")
	scale := flag.String("scale", "full", "quick or full")
	topos := flag.Int("topos", 0, "override topologies per point")
	seed := flag.Int64("seed", 0, "base seed for topology sampling")
	format := flag.String("format", "table", "output format: table or csv")
	flag.Parse()
	asCSV := *format == "csv"

	var p experiments.Params
	switch *scale {
	case "quick":
		p = experiments.Quick()
	case "full":
		p = experiments.Params{}
	default:
		fmt.Fprintln(os.Stderr, "sbsweep: -scale must be quick or full")
		os.Exit(2)
	}
	p.BaseSeed = *seed
	if *topos > 0 {
		p.Topologies = *topos
	}

	run := func(id string, fn func()) {
		if *fig != "all" && *fig != id {
			return
		}
		start := time.Now()
		fn()
		fmt.Fprintf(os.Stderr, "(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
	}

	emit := func(table func(), csvFn func() error) func() {
		if asCSV {
			return func() {
				if err := csvFn(); err != nil {
					fmt.Fprintln(os.Stderr, "sbsweep:", err)
					os.Exit(1)
				}
			}
		}
		return table
	}
	run("t1", emit(
		func() { experiments.PrintTable1(os.Stdout, experiments.Table1(nil)) },
		func() error { return experiments.Table1CSV(os.Stdout, experiments.Table1(nil)) }))
	run("2", emit(
		func() { experiments.PrintFig2(os.Stdout, experiments.Fig2(p, nil)) },
		func() error { return experiments.Fig2CSV(os.Stdout, experiments.Fig2(p, nil)) }))
	run("3", emit(
		func() { experiments.PrintFig3(os.Stdout, experiments.Fig3(p, nil, nil)) },
		func() error { return experiments.Fig3CSV(os.Stdout, experiments.Fig3(p, nil, nil)) }))
	run("8", emit(
		func() { experiments.PrintFig8(os.Stdout, experiments.Fig8(p, nil, nil)) },
		func() error { return experiments.Fig8CSV(os.Stdout, experiments.Fig8(p, nil, nil)) }))
	run("9", emit(
		func() { experiments.PrintFig9(os.Stdout, experiments.Fig9(p, nil)) },
		func() error { return experiments.Fig9CSV(os.Stdout, experiments.Fig9(p, nil)) }))
	run("10", emit(
		func() { experiments.PrintFig10(os.Stdout, experiments.Fig10(p, nil)) },
		func() error { return experiments.Fig10CSV(os.Stdout, experiments.Fig10(p, nil)) }))
	run("11", emit(
		func() { experiments.PrintFig11(os.Stdout, experiments.Fig11(p, nil)) },
		func() error { return experiments.Fig11CSV(os.Stdout, experiments.Fig11(p, nil)) }))
	run("12", emit(
		func() { experiments.PrintFig12(os.Stdout, experiments.Fig12(p, nil, nil)) },
		func() error { return experiments.Fig12CSV(os.Stdout, experiments.Fig12(p, nil, nil)) }))
	run("13", emit(
		func() { experiments.PrintFig13(os.Stdout, experiments.Fig13(p, nil)) },
		func() error { return experiments.Fig13CSV(os.Stdout, experiments.Fig13(p, nil)) }))
	run("failures", emit(
		func() { experiments.PrintFailureTimeline(os.Stdout, experiments.FailureTimeline(p, 0, 0)) },
		func() error {
			experiments.PrintFailureTimeline(os.Stdout, experiments.FailureTimeline(p, 0, 0))
			return nil
		}))
	run("scale", emit(
		func() { experiments.PrintScale(os.Stdout, experiments.Scale(p, nil)) },
		func() error {
			experiments.PrintScale(os.Stdout, experiments.Scale(p, nil))
			return nil
		}))
	run("ablation", emit(
		func() { experiments.PrintAblation(os.Stdout, experiments.Ablation(p)) },
		func() error { return experiments.AblationCSV(os.Stdout, experiments.Ablation(p)) }))
}
