// Command sbsweep regenerates the paper's evaluation tables and figures
// (Section V). Each -fig selects one experiment; -scale quick runs a
// reduced sweep for a fast smoke pass, -scale full approaches the paper's
// sampling.
//
// Sweeps run on the internal/sweep engine: a bounded worker pool
// (-jobs) with a content-addressed on-disk result cache under
// results/cache/ (-cache-dir, -no-cache). An interrupted run (Ctrl-C)
// keeps every completed cell; rerunning with -resume simulates only the
// missing ones. -progress prints live status and an ETA to stderr.
//
// Usage:
//
//	sbsweep -fig 2          # deadlock-prone topology fraction
//	sbsweep -fig 3          # deadlock-onset heat map
//	sbsweep -fig t1         # Table I buffer counts
//	sbsweep -fig 8|9|10|11|12|13
//	sbsweep -fig all -scale quick
//	sbsweep -fig 9 -resume -progress   # continue an interrupted sweep
//	sbsweep -fig scale16               # 16x16 sharded-stepper timing sweep
//	sbsweep -fig adversary -scale quick -adv-evals 24   # worst-case SLO search
//	sbsweep -fig churn -scale quick    # continuous-churn availability/recovery SLOs
//	sbsweep -fig 9 -shards 4           # run each simulation sharded
//	sbsweep -fig bench -check-zero-alloc           # fail on steady-state allocation
//	sbsweep -fig 9 -route-cache-stats  # report compiled routing-table cache efficiency
//	sbsweep -fig bench -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/experiments"
	"repro/internal/memprof"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/sweep"
)

func main() {
	fig := flag.String("fig", "all", "experiment: 2, 3, t1, 8, 9, 10, 11, 12, 13, scale, scale16, scalegrid, failures, churn, ablation, adversary, bench, or all")
	advEvals := flag.Int("adv-evals", 0, "with -fig adversary: cap on unique scenario evaluations (0 = scale default)")
	benchOut := flag.String("bench-out", "BENCH_sim.json", "output file for -fig bench results")
	shards := flag.Int("shards", 1, "per-simulation shard count (1 = sequential core; results are identical for any value)")
	scale := flag.String("scale", "full", "quick or full")
	topos := flag.Int("topos", 0, "override topologies per point")
	seed := flag.Int64("seed", 0, "base seed for topology sampling")
	format := flag.String("format", "table", "output format: table or csv")
	jobs := flag.Int("jobs", 0, "concurrent simulation jobs (0 = all cores)")
	noCache := flag.Bool("no-cache", false, "disable the on-disk result cache")
	resume := flag.Bool("resume", false, "reuse cached cells from a previous or interrupted run")
	progress := flag.Bool("progress", false, "print live progress and ETA to stderr")
	cacheDir := flag.String("cache-dir", sweep.DefaultCacheDir, "result cache location")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (post-GC) to this file at exit")
	checkZeroAlloc := flag.Bool("check-zero-alloc", false, "with -fig bench: fail if a steady-state scenario allocated after warmup")
	routeCacheStats := flag.Bool("route-cache-stats", false, "print compiled routing-table cache counters (compiles, hit rate, bytes held) to stderr at exit")
	flag.Parse()
	asCSV := *format == "csv"

	// flushProfiles finalizes -cpuprofile/-memprofile output. It runs via
	// defer on the normal path and is called explicitly before every
	// os.Exit after this point (os.Exit skips defers), so CI gets its
	// profile artifacts even when a run fails a gate. Idempotent.
	var stopCPU func() error
	flushProfiles := func() {
		if stopCPU != nil {
			if err := stopCPU(); err != nil {
				fmt.Fprintln(os.Stderr, "sbsweep:", err)
			}
			stopCPU = nil
		}
		if *memProfile != "" {
			if err := memprof.WriteHeapProfile(*memProfile); err != nil {
				fmt.Fprintln(os.Stderr, "sbsweep:", err)
			}
			*memProfile = ""
		}
	}
	defer flushProfiles()
	if *cpuProfile != "" {
		stop, err := memprof.StartCPUProfile(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sbsweep:", err)
			os.Exit(1)
		}
		stopCPU = stop
	}
	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "sbsweep:", err)
		flushProfiles()
		os.Exit(1)
	}
	if *checkZeroAlloc && *cpuProfile != "" {
		// The CPU profiler's own background allocations land in the
		// process-wide MemStats windows the gate measures, so the two are
		// mutually exclusive; run them as separate invocations.
		fmt.Fprintln(os.Stderr, "sbsweep: -check-zero-alloc cannot run under -cpuprofile (the profiler allocates)")
		os.Exit(2)
	}

	var p experiments.Params
	switch *scale {
	case "quick":
		p = experiments.Quick()
	case "full":
		p = experiments.Params{}
	default:
		fmt.Fprintln(os.Stderr, "sbsweep: -scale must be quick or full")
		os.Exit(2)
	}
	p.BaseSeed = *seed
	if *topos > 0 {
		p.Topologies = *topos
	}
	p.Shards = *shards

	// Ctrl-C cancels between jobs; completed cells stay on disk, so a
	// -resume rerun picks up where this one stopped.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := sweep.Config{Workers: *jobs, Ctx: ctx, Resume: *resume}
	if !*noCache {
		cfg.Cache = &sweep.Cache{Dir: *cacheDir, Salt: experiments.CodeVersion}
	}
	if *progress {
		// Callback invocations are serialized by the engine.
		var lastPrint time.Time
		cfg.Progress = func(s stats.ProgressSnapshot) {
			if s.Done < s.Total && time.Since(lastPrint) < time.Second {
				return
			}
			lastPrint = time.Now()
			fmt.Fprintln(os.Stderr, s)
		}
	}
	engine := sweep.New(cfg)
	p.Engine = engine

	run := func(id string, fn func()) {
		if *fig != "all" && *fig != id {
			return
		}
		if ctx.Err() != nil {
			return
		}
		start := time.Now()
		fn()
		fmt.Fprintf(os.Stderr, "(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
	}

	emit := func(table func(), csvFn func() error) func() {
		if asCSV {
			return func() {
				if err := csvFn(); err != nil {
					fatal(err)
				}
			}
		}
		return table
	}
	run("t1", emit(
		func() { experiments.PrintTable1(os.Stdout, experiments.Table1(p, nil)) },
		func() error { return experiments.Table1CSV(os.Stdout, experiments.Table1(p, nil)) }))
	run("2", emit(
		func() { experiments.PrintFig2(os.Stdout, experiments.Fig2(p, nil)) },
		func() error { return experiments.Fig2CSV(os.Stdout, experiments.Fig2(p, nil)) }))
	run("3", emit(
		func() { experiments.PrintFig3(os.Stdout, experiments.Fig3(p, nil, nil)) },
		func() error { return experiments.Fig3CSV(os.Stdout, experiments.Fig3(p, nil, nil)) }))
	run("8", emit(
		func() { experiments.PrintFig8(os.Stdout, experiments.Fig8(p, nil, nil)) },
		func() error { return experiments.Fig8CSV(os.Stdout, experiments.Fig8(p, nil, nil)) }))
	run("9", emit(
		func() { experiments.PrintFig9(os.Stdout, experiments.Fig9(p, nil)) },
		func() error { return experiments.Fig9CSV(os.Stdout, experiments.Fig9(p, nil)) }))
	run("10", emit(
		func() { experiments.PrintFig10(os.Stdout, experiments.Fig10(p, nil)) },
		func() error { return experiments.Fig10CSV(os.Stdout, experiments.Fig10(p, nil)) }))
	run("11", emit(
		func() { experiments.PrintFig11(os.Stdout, experiments.Fig11(p, nil)) },
		func() error { return experiments.Fig11CSV(os.Stdout, experiments.Fig11(p, nil)) }))
	run("12", emit(
		func() { experiments.PrintFig12(os.Stdout, experiments.Fig12(p, nil, nil)) },
		func() error { return experiments.Fig12CSV(os.Stdout, experiments.Fig12(p, nil, nil)) }))
	run("13", emit(
		func() { experiments.PrintFig13(os.Stdout, experiments.Fig13(p, nil)) },
		func() error { return experiments.Fig13CSV(os.Stdout, experiments.Fig13(p, nil)) }))
	run("failures", emit(
		func() { experiments.PrintFailureTimeline(os.Stdout, experiments.FailureTimeline(p, 0, 0)) },
		func() error {
			experiments.PrintFailureTimeline(os.Stdout, experiments.FailureTimeline(p, 0, 0))
			return nil
		}))
	// Continuous-churn availability/recovery-SLO comparison: Poisson
	// link/router fail+recover events overlapping freely over ≥1M cycles
	// (full scale), Static Bubble vs spanning-tree re-election vs a
	// DBR-style regional-stall baseline. Reports p50/p99/p99.9 recovery
	// latency, availability, and delivered-packet latency SLOs from
	// streaming quantile sketches merged across seeds.
	churnCfg := experiments.ChurnConfig{}
	churnP := p
	if *scale == "quick" {
		churnCfg = experiments.QuickChurn()
	} else {
		// Full scale runs the 256-router mesh so a router loss is a 1/256
		// event, matching the availability framing.
		churnP.Width, churnP.Height = 16, 16
	}
	run("churn", emit(
		func() { experiments.PrintChurn(os.Stdout, churnCfg, experiments.Churn(churnP, churnCfg)) },
		func() error { return experiments.ChurnCSV(os.Stdout, experiments.Churn(churnP, churnCfg)) }))
	run("scale", emit(
		func() { experiments.PrintScale(os.Stdout, experiments.Scale(p, nil)) },
		func() error {
			experiments.PrintScale(os.Stdout, experiments.Scale(p, nil))
			return nil
		}))
	// 16x16 sharded-stepper timing sweep: the paper's 256-router scale
	// point (89 SBs) under a recovery storm, run at shard counts 1/2/4/8
	// with byte-identical Stats verified across all of them. Like bench
	// it is not a sweep-engine job — timings must not share the machine.
	run("scale16", func() {
		rows, err := experiments.Scale16()
		if err != nil {
			fatal(err)
		}
		experiments.PrintScale16(os.Stdout, rows)
	})
	// Mesh-size scaling grid: the scale16 recovery-storm recipe at
	// 16x16, 32x32 and 64x64 with bisection-scaled injection, each size
	// run at shard counts 1/2/4/8 with byte-identical Stats verified.
	// The numbers behind EXPERIMENTS.md's sharded-stepper scaling
	// section; each row records GOMAXPROCS so single-CPU measurements
	// are self-describing.
	run("scalegrid", func() {
		rows, err := experiments.ScaleGrid()
		if err != nil {
			fatal(err)
		}
		experiments.PrintScaleGrid(os.Stdout, rows)
	})
	// Adversarial worst-case SLO search: hill climb with restarts over
	// (faults × traffic × control-plane perturbation), each candidate
	// evaluated as one sweep-engine job. Reproducible for a fixed -seed
	// and budget; cached cells make a rerun or -resume instant.
	run("adversary", func() {
		cfg := experiments.AdversaryConfig(*scale == "quick", *seed, *advEvals)
		res, err := experiments.Adversary(p, cfg)
		if err != nil {
			fatal(err)
		}
		if asCSV {
			if err := experiments.AdversaryCSV(os.Stdout, res); err != nil {
				fatal(err)
			}
		} else {
			experiments.PrintAdversary(os.Stdout, res)
		}
	})
	run("ablation", emit(
		func() { experiments.PrintAblation(os.Stdout, experiments.Ablation(p)) },
		func() error { return experiments.AblationCSV(os.Stdout, experiments.Ablation(p)) }))
	// Simulator-core benchmark: event-driven Step vs refmodel full scan on
	// identical seeds. Not a sweep — it runs locally and single-threaded so
	// the timings are comparable — and it double-checks both cores land on
	// identical Stats.
	run("bench", func() {
		rows, err := experiments.SimBench()
		if err != nil {
			fatal(err)
		}
		experiments.PrintSimBench(os.Stdout, rows)
		f, err := os.Create(*benchOut)
		if err == nil {
			err = experiments.WriteSimBenchJSON(f, rows)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *benchOut)
		// The CI regression gate: steady-state scenarios must report a
		// post-warmup allocation rate of exactly zero.
		if *checkZeroAlloc {
			if err := experiments.CheckZeroAlloc(rows); err != nil {
				fatal(err)
			}
			fmt.Fprintln(os.Stderr, "zero-alloc gate: ok")
		}
	})

	st := engine.Stats()
	fmt.Fprintf(os.Stderr, "sweep engine: %d jobs (%d executed, %d cached, %d failed, %d cancelled)\n",
		st.Jobs, st.Executed, st.CacheHits, st.Failed, st.Cancelled)
	if *routeCacheStats {
		fmt.Fprintln(os.Stderr, routing.CacheStats())
	}
	if st.CacheWriteErrs > 0 {
		fmt.Fprintf(os.Stderr, "sbsweep: warning: %d results could not be written to %s — a -resume rerun will resimulate them\n",
			st.CacheWriteErrs, *cacheDir)
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "sbsweep: interrupted — completed cells are cached; rerun with -resume to continue")
		flushProfiles()
		os.Exit(130)
	}
}
