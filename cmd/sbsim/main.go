// Command sbsim runs one NoC simulation: a mesh with optional random
// faults, one of the three deadlock-freedom schemes (spanning tree,
// escape VC, static bubble), and synthetic traffic — then reports
// latency, throughput, recovery-protocol activity, link utilization, and
// the energy breakdown.
//
// Examples:
//
//	sbsim -scheme sb -kind links -faults 20 -rate 0.10 -cycles 20000
//	sbsim -scheme tree -kind routers -faults 8 -pattern bit_complement
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/deadlock"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/memprof"
	"repro/internal/network"
	"repro/internal/snapshot"
	"repro/internal/topology"
	"repro/internal/validate"
	"repro/internal/viz"
)

func main() {
	width := flag.Int("width", 8, "mesh width")
	height := flag.Int("height", 8, "mesh height")
	kindStr := flag.String("kind", "links", "fault kind: links or routers")
	faults := flag.Int("faults", 0, "number of random faults")
	seed := flag.Int64("seed", 1, "topology and traffic seed")
	schemeStr := flag.String("scheme", "sb", "scheme: tree, evc, or sb")
	pattern := flag.String("pattern", "uniform_random", "traffic: uniform_random, bit_complement, transpose")
	rate := flag.Float64("rate", 0.05, "offered load in flits/node/cycle")
	cycles := flag.Int("cycles", 20000, "simulated cycles")
	drain := flag.Bool("drain", true, "stop injecting after cycles and drain (up to 10x horizon)")
	tdd := flag.Int64("tdd", 34, "static-bubble detection threshold")
	spin := flag.Bool("spin", false, "use SPIN-style synchronized-rotation recovery (follow-up work)")
	vizDump := flag.Bool("viz", false, "render occupancy/fence/bubble maps at end of run")
	check := flag.Bool("check", false, "run invariant validation at end of run")
	snapFile := flag.String("snapshot", "", "write a JSON diagnostic snapshot to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the simulation loop to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (post-GC) after the run to this file")
	flag.Parse()

	var kind topology.FaultKind
	switch *kindStr {
	case "links":
		kind = topology.LinkFaults
	case "routers":
		kind = topology.RouterFaults
	default:
		fmt.Fprintln(os.Stderr, "sbsim: -kind must be links or routers")
		os.Exit(2)
	}
	var scheme experiments.Scheme
	switch *schemeStr {
	case "tree":
		scheme = experiments.SpanningTree
	case "evc":
		scheme = experiments.EscapeVC
	case "sb":
		scheme = experiments.StaticBubble
	default:
		fmt.Fprintln(os.Stderr, "sbsim: -scheme must be tree, evc, or sb")
		os.Exit(2)
	}

	p := experiments.Params{Width: *width, Height: *height, TDD: *tdd, BaseSeed: *seed, SpinMode: *spin}
	topo := p.SampleTopology(kind, *faults, 0)
	fmt.Printf("topology: %v (%d %v faults, seed %d)\n", topo, *faults, kind, *seed)
	fmt.Printf("scheme:   %v\n", scheme)

	inst := p.Build(topo, scheme, *seed)
	inj := inst.Injector(inst.Pattern(*pattern), *rate, *seed+1000)
	s := inst.Sim

	// Profiling covers exactly the simulation loop (build and reporting
	// excluded), so profiles are directly comparable across runs.
	stopCPU := func() error { return nil }
	if *cpuProfile != "" {
		stop, err := memprof.StartCPUProfile(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sbsim:", err)
			os.Exit(1)
		}
		stopCPU = stop
	}
	for c := 0; c < *cycles; c++ {
		inj.Tick(s)
		s.Step()
	}
	if *drain {
		for i := 0; i < 10**cycles && s.InFlight()+s.QueuedPackets() > 0; i += 100 {
			s.Run(100)
		}
	}
	if err := stopCPU(); err != nil {
		fmt.Fprintln(os.Stderr, "sbsim:", err)
		os.Exit(1)
	}
	if *memProfile != "" {
		if err := memprof.WriteHeapProfile(*memProfile); err != nil {
			fmt.Fprintln(os.Stderr, "sbsim:", err)
			os.Exit(1)
		}
	}

	st := &s.Stats
	fmt.Printf("\n--- traffic ---\n")
	fmt.Printf("offered:   %d packets (%d dropped unreachable)\n", st.Offered, st.DroppedUnreachable)
	fmt.Printf("delivered: %d packets / %d flits\n", st.Delivered, st.DeliveredFlits)
	fmt.Printf("in flight: %d, queued: %d\n", s.InFlight(), s.QueuedPackets())
	fmt.Printf("latency:   avg %.1f cycles (network %.1f), max %d\n",
		st.AvgLatency(), st.AvgNetLatency(), st.MaxLatency)
	fmt.Printf("accepted:  %.4f flits/node/cycle\n",
		float64(st.DeliveredFlits)/float64(s.Now)/float64(topo.AliveRouterCount()))

	if scheme == experiments.StaticBubble {
		fmt.Printf("\n--- recovery ---\n")
		fmt.Printf("probes sent/returned: %d/%d\n", st.ProbesSent, st.ProbesReturned)
		fmt.Printf("disables/enables/check_probes: %d/%d/%d\n",
			st.DisablesSent, st.EnablesSent, st.CheckProbesSent)
		fmt.Printf("deadlock recoveries: %d (bubble occupancies %d, transfers %d, spins %d)\n",
			st.DeadlockRecoveries, st.BubbleOccupancies, st.BubbleTransfers, st.SpinRotations)
	}
	if scheme == experiments.EscapeVC {
		fmt.Printf("\n--- recovery ---\nescape transfers: %d\n", st.EscapeTransfers)
	}

	util := st.LinkUtilization(s.Now, s.AliveDirectedLinkCount())
	fmt.Printf("\n--- link utilization ---\n")
	for c := network.LinkClass(0); c < network.NumLinkClasses; c++ {
		fmt.Printf("%-12s %.4f%%\n", c, 100*util[c])
	}

	model := energy.Default32nm()
	b := model.Compute(s, energy.SchemeOverheadBuffers(s, scheme.EnergyKey()), s.Now)
	fmt.Printf("\n--- energy (pJ) ---\n")
	fmt.Printf("router dynamic: %.0f\nlink dynamic:   %.0f\nrouter leakage: %.0f\nlink leakage:   %.0f\ntotal:          %.0f\n",
		b.RouterDynamic, b.LinkDynamic, b.RouterLeakage, b.LinkLeakage, b.Total())

	if blocked := deadlock.Analyze(s); len(blocked) > 0 {
		fmt.Printf("\nWARNING: %d packets permanently blocked at end of run\n", len(blocked))
	}
	if *vizDump {
		fmt.Println()
		viz.Summary(os.Stdout, s, inst.SB)
	}
	if *check {
		if vs := validate.Check(s, inst.SB); len(vs) > 0 {
			fmt.Printf("\nINVARIANT VIOLATIONS (%d):\n", len(vs))
			for _, v := range vs {
				fmt.Println(" ", v)
			}
			os.Exit(1)
		}
		fmt.Println("\ninvariants: all checks passed")
	}
	if *snapFile != "" {
		f, err := os.Create(*snapFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sbsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := snapshot.Write(f, snapshot.Capture(s, inst.SB)); err != nil {
			fmt.Fprintln(os.Stderr, "sbsim:", err)
			os.Exit(1)
		}
		fmt.Printf("snapshot written to %s\n", *snapFile)
	}
}
