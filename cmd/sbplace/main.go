// Command sbplace inspects the static-bubble placement algorithm
// (paper Section III): it renders the placement for an n×m mesh, reports
// the bubble count from both the enumeration and the closed form, and
// verifies the coverage lemma on the full mesh and on randomly faulted
// derivatives.
//
// Usage:
//
//	sbplace [-width 8] [-height 8] [-verify-faults 200]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/topology"
)

func main() {
	width := flag.Int("width", 8, "mesh width")
	height := flag.Int("height", 8, "mesh height")
	verify := flag.Int("verify-faults", 100, "random faulted topologies to verify coverage on (0 to skip)")
	flag.Parse()

	if *width < 1 || *height < 1 {
		fmt.Fprintln(os.Stderr, "sbplace: mesh dimensions must be positive")
		os.Exit(2)
	}

	fmt.Printf("Static bubble placement for a %dx%d mesh\n\n", *width, *height)
	for y := *height - 1; y >= 0; y-- {
		fmt.Printf("%3d  ", y)
		for x := 0; x < *width; x++ {
			if core.HasStaticBubble(geom.Coord{X: x, Y: y}) {
				fmt.Print(" ◉")
			} else {
				fmt.Print(" ·")
			}
		}
		fmt.Println()
	}
	fmt.Print("\n     ")
	for x := 0; x < *width; x++ {
		fmt.Printf("%2d", x%10)
	}
	fmt.Println()

	enum := core.PlacementCount(*width, *height)
	closed := core.PlacementCountClosedForm(*width, *height)
	total := *width * *height
	fmt.Printf("\nbubbles (enumerated):  %d of %d routers (%.1f%%)\n", enum, total, 100*float64(enum)/float64(total))
	fmt.Printf("bubbles (closed form): %d  [agree: %v]\n", closed, enum == closed)
	fmt.Printf("escape-VC overhead:    %d buffers (n*m*5, Table I)\n", total*geom.NumPorts)

	mesh := topology.NewMesh(*width, *height)
	fmt.Printf("coverage on full mesh: %v\n", core.VerifyCoverage(mesh))

	if *verify > 0 {
		rng := rand.New(rand.NewSource(1))
		bad := 0
		for i := 0; i < *verify; i++ {
			t := topology.NewMesh(*width, *height)
			maxL := topology.MaxFaults(*width, *height, topology.LinkFaults)
			topology.RandomLinkFaults(t, rng, rng.Intn(maxL/2+1))
			topology.RandomRouterFaults(t, rng, rng.Intn(total/4+1))
			if !core.VerifyCoverage(t) {
				bad++
				fmt.Printf("COVERAGE VIOLATION: %v cycle %v\n", t, core.CoverageCounterexample(t))
			}
		}
		fmt.Printf("coverage on %d random faulted topologies: %d violations\n", *verify, bad)
		if bad > 0 {
			os.Exit(1)
		}
	}
}
