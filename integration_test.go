package repro

import (
	"math/rand"
	"testing"

	"repro/internal/bfc"
	"repro/internal/core"
	"repro/internal/deadlock"
	"repro/internal/escape"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/reconfig"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/validate"
)

// Cross-subsystem integration tests: the scheme plugins, flow control,
// reconfiguration, and validation must compose on one simulator.

func TestSBWithBFCBoundaryCoexist(t *testing.T) {
	// Bubble flow control guards the boundary ring while Static Bubble
	// recovery guards everything else; the GrantFilter chain and the
	// recovery hooks must not interfere.
	topo := topology.NewMesh(6, 6)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	ctrl := core.Attach(s, core.Options{TDD: 24})
	if _, err := bfc.Attach(s, bfc.BoundaryRing(topo)); err != nil {
		t.Fatal(err)
	}
	min := routing.NewMinimal(topo)
	inj := traffic.NewInjector(topo.AliveRouters(), min,
		traffic.NewUniformRandom(topo.AliveRouters()), 0.08, rand.New(rand.NewSource(2)))
	for c := 0; c < 6000; c++ {
		if c < 4000 {
			inj.Tick(s)
		}
		s.Step()
	}
	for i := 0; i < 100000 && s.InFlight()+s.QueuedPackets() > 0; i += 100 {
		s.Run(100)
	}
	if s.InFlight()+s.QueuedPackets() != 0 {
		t.Fatalf("combined schemes failed to drain (inflight %d)", s.InFlight())
	}
	if vs := validate.Check(s, ctrl); len(vs) != 0 {
		t.Fatalf("invariants violated: %v", vs)
	}
}

func TestEscapeSchemeWithReconfig(t *testing.T) {
	// The escape-VC baseline must survive runtime link failures handled
	// by the reconfiguration manager (escaped packets reroute over the
	// tree; regular packets get repaired minimal routes).
	topo := topology.NewMesh(6, 6)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(3)))
	ud := routing.NewUpDown(topo)
	escape.Attach(s, ud, escape.Options{Timeout: 30})
	mgr := reconfig.New(s)
	rng := rand.New(rand.NewSource(4))
	alive := topo.AliveRouters()
	offered := int64(0)
	for c := 0; c < 4000; c++ {
		if c == 1500 {
			// Fail a central link mid-run. NOTE: the up/down tree is
			// rebuilt implicitly by escaped packets' TreeNextHop only if
			// the tree edges survive; fail a non-tree link to stay within
			// the escape scheme's reconfiguration assumptions.
			target := topo.ID(geom.Coord{X: 4, Y: 4})
			for _, d := range geom.LinkDirs {
				nb := topo.Neighbor(target, d)
				if nb != geom.InvalidNode && ud.Parent(target) != nb && ud.Parent(nb) != target {
					mgr.FailLink(target, d)
					break
				}
			}
		}
		if c < 3000 {
			for _, src := range alive {
				if rng.Float64() >= 0.04 {
					continue
				}
				dst := alive[rng.Intn(len(alive))]
				if dst == src {
					continue
				}
				if r, ok := mgr.Route(src, dst); ok {
					s.Enqueue(s.NewPacket(src, dst, rng.Intn(3), 5, r))
					offered++
				}
			}
		}
		s.Step()
	}
	for i := 0; i < 100000 && s.InFlight()+s.QueuedPackets() > 0; i += 100 {
		s.Run(100)
	}
	if got := s.Stats.Delivered + s.Stats.Lost; got != offered {
		t.Fatalf("accounting: delivered+lost %d != offered %d", got, offered)
	}
	if s.InFlight()+s.QueuedPackets() != 0 {
		t.Fatal("escape scheme failed to drain after reconfiguration")
	}
}

func TestSBWithReconfigAndValidationSoak(t *testing.T) {
	// Long soak combining everything: SB recovery, progressive gating,
	// abrupt failures, per-phase invariant validation, and a final exact
	// deadlock check.
	topo := topology.NewMesh(8, 8)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(5)))
	ctrl := core.Attach(s, core.Options{TDD: 24})
	mgr := reconfig.New(s)
	rng := rand.New(rand.NewSource(6))

	phase := func(cycles int, rate float64) {
		alive := topo.AliveRouters()
		for c := 0; c < cycles; c++ {
			for _, src := range alive {
				if !topo.RouterAlive(src) || rng.Float64() >= rate {
					continue
				}
				dst := alive[rng.Intn(len(alive))]
				if dst == src || !topo.RouterAlive(dst) {
					continue
				}
				if r, ok := mgr.Route(src, dst); ok {
					s.Enqueue(s.NewPacket(src, dst, rng.Intn(3), 1+4*rng.Intn(2), r))
				}
			}
			s.Step()
			mgr.TryCompleteGates()
		}
		if vs := validate.Check(s, ctrl); len(vs) != 0 {
			t.Fatalf("invariants violated mid-soak: %v", vs)
		}
	}

	phase(1500, 0.06)
	mgr.FailLink(topo.ID(geom.Coord{X: 3, Y: 3}), geom.East)
	phase(1500, 0.06)
	if err := mgr.RequestGate(topo.ID(geom.Coord{X: 6, Y: 2})); err != nil {
		t.Fatal(err)
	}
	phase(1500, 0.06)
	mgr.FailRouter(topo.ID(geom.Coord{X: 2, Y: 5}))
	phase(1500, 0.06)

	for i := 0; i < 150000 && s.InFlight()+s.QueuedPackets() > 0; i += 100 {
		s.Run(100)
		mgr.TryCompleteGates()
	}
	if s.InFlight()+s.QueuedPackets() != 0 {
		t.Fatalf("soak failed to drain: %d in flight, %d queued (blocked %d)",
			s.InFlight(), s.QueuedPackets(), len(deadlock.Analyze(s)))
	}
	if vs := validate.Check(s, ctrl); len(vs) != 0 {
		t.Fatalf("final invariants violated: %v", vs)
	}
	if !core.VerifyCoverage(topo) {
		t.Fatal("coverage must survive arbitrary reconfiguration")
	}
}

func TestThreeSchemesSameWorkloadAgreeOnDelivery(t *testing.T) {
	// All three schemes must deliver the identical packet population of a
	// light workload on the same irregular topology (they differ only in
	// latency/energy, never in correctness).
	topo := topology.RandomIrregular(6, 6, topology.LinkFaults, 8, 11)
	min := routing.NewMinimal(topo)
	build := func(which int) *network.Sim {
		s := network.New(topo.Clone(), network.Config{}, rand.New(rand.NewSource(7)))
		switch which {
		case 0:
			core.Attach(s, core.Options{TDD: 24})
		case 1:
			escape.Attach(s, routing.NewUpDown(topo), escape.Options{Timeout: 24})
		}
		return s
	}
	var delivered [3]int64
	for which := 0; which < 3; which++ {
		s := build(which)
		rng := rand.New(rand.NewSource(8))
		offered := int64(0)
		for c := 0; c < 3000; c++ {
			if c < 2000 {
				for n := 0; n < 36; n++ {
					src := geom.NodeID(n)
					if !topo.RouterAlive(src) || rng.Float64() >= 0.03 {
						continue
					}
					dst := geom.NodeID(rng.Intn(36))
					if r, ok := min.Route(src, dst, rng); ok {
						s.Enqueue(s.NewPacket(src, dst, rng.Intn(3), 5, r))
						offered++
					}
				}
			}
			s.Step()
		}
		s.Run(30000)
		if s.Stats.Delivered != offered {
			t.Fatalf("scheme %d delivered %d of %d", which, s.Stats.Delivered, offered)
		}
		delivered[which] = s.Stats.Delivered
	}
	if delivered[0] != delivered[1] || delivered[1] != delivered[2] {
		t.Fatalf("delivery disagreement: %v", delivered)
	}
}
